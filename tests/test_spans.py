"""The flight recorder: span recording, exports, merge, and the CLIs.

The deterministic-safety contracts pinned here:

* recording spans never changes what a run computes (traced == untraced
  results, serial and parallel);
* two same-seed ``workers=2`` runs export **byte-identical** span JSONL
  in deterministic mode (wall-clock fields zeroed, host-dependent
  annotations stripped);
* the cross-process merge interleaves by round, so a full ring evicts
  the oldest rounds uniformly instead of dropping whole partitions.
"""

import json

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.report import format_stall_table
from repro.harness.runner import run_experiment
from repro.harness.runreport import hottest_ports, render_run_report
from repro.harness.sweep import ResultCache, run_sweep
from repro.obs import RssSampler, SpanRecorder, current_rss_bytes
from repro.obs.spans import (
    DEFAULT_SPAN_CAPACITY,
    NONDETERMINISTIC_ARGS,
    ROUND_PHASES,
    chrome_trace,
    format_span_summary,
    load_spans_jsonl,
    round_merge_key,
    stall_table,
    trace_events_to_chrome,
    write_chrome,
    write_chrome_doc,
)

#: the smallest partitionable fabric: two leaf pods, tiny cache flows —
#: a few hundred barrier rounds, well under a second of wall time
_PARALLEL = dict(
    topology="leafspine", n_leaf=2, n_spine=2, hosts_per_leaf=2,
    workload="cache", transport="dctcp", scheme="tcn",
    scheduler="dwrr", load=0.6, n_flows=8, seed=5,
)

_SERIAL = dict(
    scheme="tcn", scheduler="dwrr", workload="cache",
    load=0.5, n_flows=10, seed=2,
)


def _flow_digest(result):
    return [(f.id, f.fct_ns) for f in result.flows if f.completed]


class TestSpanRecorder:
    def test_add_and_iter_dicts_shape(self):
        rec = SpanRecorder(pid="run")
        rec.add("engine", "chunk", 100, 50, tid="sim", args={"chunk": 0})
        (d,) = list(rec.iter_dicts())
        assert d == {
            "pid": "run", "tid": "sim", "cat": "engine", "name": "chunk",
            "t0_ns": 100, "dur_ns": 50, "args": {"chunk": 0},
        }

    def test_span_context_manager_stamps_duration(self):
        rec = SpanRecorder()
        with rec.span("engine", "chunk", tid="sim") as s:
            s.args["filled"] = "inside"
        (record,) = rec.spans
        assert record[5] >= 0  # dur_ns
        assert record[6] == {"filled": "inside"}

    def test_ring_evicts_oldest_and_counts(self):
        rec = SpanRecorder(capacity=3)
        for i in range(5):
            rec.add("c", "n", i, 1)
        assert len(rec) == 3
        assert rec.dropped_spans == 2
        # the newest window survives
        assert [r[4] for r in rec.spans] == [2, 3, 4]

    def test_adopt_carries_drop_counts(self):
        src = SpanRecorder(capacity=2, pid="p0")
        for i in range(4):
            src.add("round", "compute", i, 1)
        dst = SpanRecorder(pid="run")
        dst.adopt(src.spans, src.dropped_spans)
        assert len(dst) == 2
        assert dst.dropped_spans == 2
        # shipped records keep their original pid label
        assert all(r[0] == "p0" for r in dst.spans)

    def test_clear_resets_everything(self):
        rec = SpanRecorder(capacity=1)
        rec.add("c", "n", 0, 1)
        rec.add("c", "n", 1, 1)
        rec.clear()
        assert len(rec) == 0 and rec.dropped_spans == 0

    def test_default_capacity_is_bounded(self):
        assert SpanRecorder().capacity == DEFAULT_SPAN_CAPACITY


class TestExports:
    def _recorder(self):
        rec = SpanRecorder(pid="run")
        rec.add("engine", "chunk", 1000, 500, tid="sim",
                args={"chunk": 0, "rss_bytes": 123, "events": 7})
        rec.add("engine", "chunk", 2000, 400, tid="sim",
                args={"chunk": 1, "freelist_allocated": 5, "events": 3})
        return rec

    def test_jsonl_round_trips(self, tmp_path):
        rec = self._recorder()
        path = str(tmp_path / "spans.jsonl")
        assert rec.export_jsonl(path) == 2
        back = load_spans_jsonl(path)
        assert back == list(rec.iter_dicts())

    def test_deterministic_export_zeroes_wall_and_strips_host_args(
        self, tmp_path
    ):
        rec = self._recorder()
        path = str(tmp_path / "det.jsonl")
        rec.export_jsonl(path, deterministic=True)
        for d in load_spans_jsonl(path):
            assert d["t0_ns"] == 0 and d["dur_ns"] == 0
            assert not set(d["args"]) & NONDETERMINISTIC_ARGS
        # deterministic args survive
        assert load_spans_jsonl(path)[0]["args"]["events"] == 7

    def test_chrome_trace_shape(self):
        doc = chrome_trace(self._recorder().iter_dicts())
        assert doc["displayTimeUnit"] == "ms"
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(slices) == 2
        # one process_name + one thread_name metadata record
        assert {m["name"] for m in meta} == {"process_name", "thread_name"}
        # timestamps rebase to the earliest span, in microseconds
        assert slices[0]["ts"] == 0.0 and slices[0]["dur"] == 0.5
        assert slices[1]["ts"] == 1.0

    def test_write_chrome_returns_slice_count(self, tmp_path):
        path = str(tmp_path / "trace.json")
        assert write_chrome(list(self._recorder().iter_dicts()), path) == 2
        doc = json.load(open(path))
        assert isinstance(doc["traceEvents"], list)


class TestTraceEventsToChrome:
    def test_packet_and_control_mapping(self, tmp_path):
        events = [
            {"ev": "enqueue", "t": 100, "port": "sw0", "q": 1,
             "flow": 3, "seq": 0, "size": 1538},
            {"ev": "dequeue", "t": 900, "port": "sw0", "q": 1,
             "flow": 3, "seq": 0, "size": 1538, "sojourn_ns": 800},
            {"ev": "mark", "t": 900, "port": "sw0", "q": 1,
             "flow": 3, "seq": 0, "size": 1538, "where": "dequeue"},
            {"ev": "drop", "t": 950, "port": "sw0", "q": 0,
             "flow": 4, "seq": 1, "size": 1538, "cause": "overflow"},
            {"ev": "cwnd", "t": 1000, "flow": 3, "cwnd": 12.0,
             "reason": "ecn"},
        ]
        doc = trace_events_to_chrome(events)
        by_ph = {}
        for e in doc["traceEvents"]:
            by_ph.setdefault(e["ph"], []).append(e)
        # dequeue -> one sojourn slice starting at t - sojourn
        (slice_ev,) = by_ph["X"]
        assert slice_ev["ts"] == pytest.approx(0.1)  # (900-800)/1e3 us
        assert slice_ev["dur"] == pytest.approx(0.8)
        # enqueue/mark/drop -> instants with their detail arg
        instants = {e["name"] for e in by_ph["i"]}
        assert instants == {"enqueue", "mark", "drop"}
        # cwnd -> a per-flow counter series
        (counter,) = by_ph["C"]
        assert counter["name"] == "cwnd.flow3"
        assert counter["args"] == {"cwnd": 12.0}
        # the writer reports non-metadata events
        path = str(tmp_path / "pkt.json")
        assert write_chrome_doc(doc, path) == 5
        json.load(open(path))  # well-formed


class TestStallTable:
    def _round_spans(self):
        spans = []
        for rnd in range(3):
            for pid, compute in (("p0", 100), ("p1", 300)):
                for phase, dur in (
                    ("compute", compute), ("serialize", 10),
                    ("ipc_wait", 20), ("merge", 5),
                ):
                    spans.append({
                        "pid": pid, "tid": "phases", "cat": "round",
                        "name": phase, "t0_ns": 0, "dur_ns": dur,
                        "args": {"round": rnd},
                    })
        return spans

    def test_attributes_phases_and_critical_partition(self):
        table = stall_table(self._round_spans())
        assert table["rounds"] == 3
        assert set(table["phases"]) == set(ROUND_PHASES)
        assert table["phases"]["compute"]["count"] == 6
        assert table["phases"]["compute"]["max_ns"] == 300
        # p1's compute is slowest in every round
        assert table["critical_partition"] == {"p1": 3}

    def test_returns_none_without_round_spans(self):
        serial = [{
            "pid": "run", "tid": "sim", "cat": "engine", "name": "chunk",
            "t0_ns": 0, "dur_ns": 1, "args": {},
        }]
        assert stall_table(serial) is None

    def test_format_stall_table_renders(self):
        out = format_stall_table(stall_table(self._round_spans()))
        assert "3 barrier rounds" in out
        assert "compute" in out and "ipc_wait" in out
        assert "critical-path partition" in out and "p1 x3" in out

    def test_format_stall_table_empty(self):
        assert "no round-phase" in format_stall_table({"phases": {}})

    def test_round_merge_key_orders_rounds_before_partitions(self):
        def rec(pid, name, args):
            return (pid, "t", "round", name, 0, 0, args)

        records = [
            rec("p1", "compute", {"round": 1}),
            rec("p0", "compute", {"round": 1}),
            rec("p1", "serialize", {"round": 0}),
            rec("coord", "ipc_wait", {"barrier": 1}),  # waits for round 0
        ]
        records.sort(key=round_merge_key)
        assert [(r[0], r[3]) for r in records] == [
            ("coord", "ipc_wait"),
            ("p1", "serialize"),
            ("p0", "compute"),
            ("p1", "compute"),
        ]


class TestRssSampling:
    def test_current_rss_is_positive_on_linux(self):
        assert current_rss_bytes() > 0

    def test_sampler_tracks_high_water(self):
        sampler = RssSampler(stride=1)
        sampler.sample()
        assert sampler.samples == 1
        assert sampler.hwm_bytes >= sampler.last_bytes > 0

    def test_stride_skips_boundaries(self):
        sampler = RssSampler(stride=3)
        for _ in range(6):
            sampler.sample()
        assert sampler.samples == 2

    def test_stride_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_RSS_STRIDE", "7")
        assert RssSampler().stride == 7
        monkeypatch.setenv("REPRO_RSS_STRIDE", "bogus")
        assert RssSampler().stride == 1


class TestSerialSpans:
    def test_chunk_spans_with_annotations(self):
        spans = SpanRecorder(pid="run")
        result = run_experiment(
            ExperimentConfig(**_SERIAL), spans=spans
        )
        chunks = [r for r in spans.spans if r[2] == "engine"]
        assert chunks, "serial run recorded no chunk spans"
        args = chunks[0][6]
        assert args["gc_paused"] is True
        assert args["sim_to_ns"] > args["sim_from_ns"] >= 0
        assert args["rss_bytes"] > 0
        assert sum(c[6]["events"] for c in chunks) == result.events

    def test_spans_do_not_perturb_results(self):
        plain = run_experiment(ExperimentConfig(**_SERIAL))
        traced = run_experiment(
            ExperimentConfig(**_SERIAL), spans=SpanRecorder()
        )
        assert _flow_digest(plain) == _flow_digest(traced)
        assert plain.marks == traced.marks
        assert plain.drops == traced.drops
        assert plain.events == traced.events


class TestParallelSpans:
    def _run(self, spans=None):
        return run_experiment(
            ExperimentConfig(workers=2, **_PARALLEL), spans=spans
        )

    def test_every_partition_reports_every_phase(self):
        spans = SpanRecorder(pid="run")
        result = self._run(spans)
        rounds = int(result.profile["rounds"])
        assert rounds > 0
        coverage = {
            (r[0], r[3]) for r in spans.spans if r[2] == "round"
        }
        for pid in ("p0", "p1"):
            for phase in ROUND_PHASES:
                assert (pid, phase) in coverage, (pid, phase)
        # the coordinator's barrier spans are present too
        assert any(r[2] == "sync" for r in spans.spans)
        # and the stall table lands in the profile
        stats = result.profile["phase_stats"]
        assert stats["rounds"] == rounds
        assert set(stats["phases"]) == set(ROUND_PHASES)

    def test_deterministic_export_is_byte_identical(self, tmp_path):
        exports = []
        for i in range(2):
            spans = SpanRecorder(pid="run")
            self._run(spans)
            path = str(tmp_path / f"run{i}.jsonl")
            spans.export_jsonl(path, deterministic=True)
            exports.append(open(path, "rb").read())
        assert exports[0] == exports[1]
        assert exports[0].count(b"\n") > 0

    def test_spans_do_not_perturb_parallel_results(self):
        plain = self._run()
        traced = self._run(SpanRecorder())
        assert _flow_digest(plain) == _flow_digest(traced)
        assert plain.marks == traced.marks
        assert plain.events == traced.events

    def test_full_ring_evicts_rounds_not_partitions(self):
        spans = SpanRecorder(pid="run", capacity=256)
        self._run(spans)
        assert spans.dropped_spans > 0
        pids = {r[0] for r in spans.spans if r[2] == "round"}
        # both partitions survive eviction (plus the coordinator's
        # pipe-wait spans) — a pid-ordered merge would have kept only p1
        assert pids >= {"p0", "p1"}


class TestSweepSpans:
    def _configs(self):
        return [
            ExperimentConfig(**{**_SERIAL, "seed": s}) for s in (1, 2)
        ]

    def test_job_spans_with_status(self, tmp_path):
        spans = SpanRecorder(pid="sweep")
        cache = ResultCache(str(tmp_path / "cache"))
        outcome = run_sweep(
            self._configs(), processes=2, cache=cache, spans=spans
        )
        assert outcome.ok
        jobs = [r for r in spans.spans if r[3] == "job"]
        assert [r[6]["idx"] for r in jobs] == [0, 1]
        assert all(r[6]["status"] == "ok" for r in jobs)
        assert all(r[6]["worker_pid"] > 0 for r in jobs)
        (sweep_span,) = [r for r in spans.spans if r[3] == "sweep"]
        assert sweep_span[6]["configs"] == 2

    def test_cache_hits_record_zero_duration_cached_jobs(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        run_sweep(self._configs(), processes=0, cache=cache)
        spans = SpanRecorder(pid="sweep")
        run_sweep(self._configs(), processes=0, cache=cache, spans=spans)
        jobs = [r for r in spans.spans if r[3] == "job"]
        assert len(jobs) == 2
        assert all(r[6]["status"] == "cached" for r in jobs)
        assert all(r[5] == 0 for r in jobs)  # dur_ns

    def test_error_jobs_carry_the_kind(self, monkeypatch):
        import repro.harness.sweep as sweep_mod

        def boom(cfg):
            raise RuntimeError("injected")

        monkeypatch.setattr(sweep_mod, "_execute_config", boom)
        spans = SpanRecorder(pid="sweep")
        outcome = run_sweep(self._configs()[:1], processes=0, spans=spans)
        assert not outcome.ok
        (job,) = [r for r in spans.spans if r[3] == "job"]
        assert job[6]["status"] == "exception"


class TestRunReport:
    def _result(self):
        spans = SpanRecorder(pid="run")
        result = run_experiment(
            ExperimentConfig(**_SERIAL), spans=spans
        )
        return result, spans

    def test_markdown_report_sections(self):
        result, spans = self._result()
        doc = render_run_report(result, spans=spans, fmt="md")
        for heading in (
            "# repro run report", "## Configuration", "## Run",
            "## Profile", "## FCT summary", "## Hottest ports",
            "## Timeline digest",
        ):
            assert heading in doc
        assert "engine" in doc  # the span digest table

    def test_html_report_is_self_contained(self):
        result, spans = self._result()
        doc = render_run_report(result, spans=spans, fmt="html")
        assert doc.startswith("<!DOCTYPE html>")
        assert "<style>" in doc and "</html>" in doc
        assert "src=" not in doc and "href=" not in doc

    def test_unknown_format_raises(self):
        result, spans = self._result()
        with pytest.raises(ValueError):
            render_run_report(result, fmt="pdf")

    def test_parallel_report_renders_stall_table(self):
        spans = SpanRecorder(pid="run")
        result = run_experiment(
            ExperimentConfig(workers=2, **_PARALLEL), spans=spans
        )
        doc = render_run_report(result, spans=spans, fmt="md")
        assert "## Stall attribution" in doc
        assert "barrier rounds" in doc
        assert "critical-path partition" in doc

    def test_hottest_ports_ranked_by_marks_plus_drops(self):
        metrics = {
            "port.a.rx_pkts": 10, "port.a.tx_pkts": 10,
            "port.a.marked_pkts": 1, "port.a.dropped_pkts": 0,
            "port.b.rx_pkts": 10, "port.b.tx_pkts": 10,
            "port.b.marked_pkts": 5, "port.b.dropped_pkts": 2,
            "port.c.rx_pkts": 10, "port.c.tx_pkts": 10,
            "port.c.marked_pkts": 0, "port.c.dropped_pkts": 0,
        }
        ranked = hottest_ports(metrics, top=8)
        assert [r[0] for r in ranked] == ["b", "a"]  # c has nothing


class TestCliIntegration:
    def test_run_spans_then_timeline(self, tmp_path, capsys):
        from repro.__main__ import main

        spans_path = str(tmp_path / "spans.jsonl")
        chrome_path = str(tmp_path / "spans.json")
        rc = main([
            "run", "--flows", "10", "--load", "0.5", "--seed", "2",
            "--workload", "cache",
            "--spans", spans_path, "--spans-chrome", chrome_path,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"spans to {spans_path}" in out
        json.load(open(chrome_path))  # Perfetto-loadable JSON

        rc = main(["timeline", spans_path,
                   "--chrome", str(tmp_path / "tl.json")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "engine" in out and "chunk" in out
        json.load(open(str(tmp_path / "tl.json")))

    def test_timeline_missing_file(self, capsys):
        from repro.__main__ import main

        assert main(["timeline", "/nonexistent/spans.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_chrome_conversion(self, tmp_path, capsys):
        from repro.__main__ import main

        trace_path = str(tmp_path / "run.jsonl")
        rc = main([
            "run", "--flows", "10", "--load", "0.5", "--seed", "2",
            "--workload", "cache", "--trace", trace_path,
        ])
        assert rc == 0
        capsys.readouterr()
        out_path = str(tmp_path / "run.chrome.json")
        rc = main(["trace", trace_path, "--format", "chrome",
                   "--out", out_path])
        assert rc == 0
        assert "Chrome trace events" in capsys.readouterr().out
        doc = json.load(open(out_path))
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_report_subcommand_writes_markdown(self, tmp_path, capsys):
        from repro.__main__ import main

        out_path = str(tmp_path / "report.md")
        rc = main([
            "report", "--flows", "10", "--load", "0.5", "--seed", "2",
            "--workload", "cache", "--out", out_path,
        ])
        assert rc == 0
        assert "run report" in capsys.readouterr().out
        doc = open(out_path).read()
        assert doc.startswith("# repro run report")
        assert "## Timeline digest" in doc

    def test_report_infers_html_from_extension(self, tmp_path, capsys):
        from repro.__main__ import main

        out_path = str(tmp_path / "report.html")
        rc = main([
            "report", "--flows", "10", "--load", "0.5", "--seed", "2",
            "--workload", "cache", "--out", out_path,
        ])
        assert rc == 0
        capsys.readouterr()
        assert open(out_path).read().startswith("<!DOCTYPE html>")

    def test_sweep_spans_export(self, tmp_path, capsys):
        from repro.__main__ import main

        spans_path = str(tmp_path / "sweep.jsonl")
        rc = main([
            "sweep", "--seed", "1", "--seed", "2", "--flows", "8",
            "--workload", "cache", "--load", "0.5",
            "--processes", "0", "--no-cache", "--spans", spans_path,
        ])
        assert rc == 0
        assert "sweep spans" in capsys.readouterr().out
        records = load_spans_jsonl(spans_path)
        assert sum(1 for r in records if r["name"] == "job") == 2


class TestSpanSummaryFormat:
    def test_empty(self):
        assert format_span_summary([]) == "(no spans recorded)"

    def test_groups_by_cat_and_name(self):
        spans = [
            {"cat": "engine", "name": "chunk", "dur_ns": 1000},
            {"cat": "engine", "name": "chunk", "dur_ns": 3000},
            {"cat": "sync", "name": "round", "dur_ns": 500},
        ]
        out = format_span_summary(spans)
        assert "engine" in out and "sync" in out
        chunk_row = [l for l in out.splitlines() if "chunk" in l][0]
        assert "2" in chunk_row  # count
