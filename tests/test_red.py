"""RedMarker: the full RED gateway and its simplified datacenter config."""

import random

import pytest

from repro.aqm.red import RedMarker


class TestSimplifiedConfig:
    """kmin == kmax, instantaneous occupancy — what datacenters run (§2.1)."""

    def test_marks_strictly_above_k(self):
        red = RedMarker(30_000)
        assert red.decide(30_001) is True
        assert red.decide(30_000) is False
        assert red.decide(0) is False

    def test_instantaneous_no_memory(self):
        red = RedMarker(30_000)
        red.decide(90_000)
        assert red.decide(1_000) is False  # no EWMA ghost


class TestFullRed:
    def test_gentle_region_probability_scales(self):
        red = RedMarker(10_000, 50_000, pmax=0.5, rng=random.Random(3))
        low = sum(red.decide(15_000) for _ in range(2000)) / 2000
        red2 = RedMarker(10_000, 50_000, pmax=0.5, rng=random.Random(3))
        high = sum(red2.decide(45_000) for _ in range(2000)) / 2000
        assert high > low

    def test_above_kmax_always(self):
        red = RedMarker(10_000, 50_000, pmax=0.1)
        assert all(red.decide(60_000) for _ in range(20))

    def test_below_kmin_never(self):
        red = RedMarker(10_000, 50_000, pmax=1.0)
        assert not any(red.decide(9_999) for _ in range(20))

    def test_ewma_smooths(self):
        """With a small weight, one spike does not push avg over kmin."""
        red = RedMarker(10_000, 50_000, pmax=1.0, ewma_weight=0.01)
        for _ in range(10):
            red.decide(5_000)
        assert red.decide(200_000) is False  # avg still ~7k
        assert red.avg < 10_000

    def test_ewma_converges(self):
        red = RedMarker(10_000, 10_000, ewma_weight=0.1)
        for _ in range(400):
            red.decide(40_000)
        assert red.avg == pytest.approx(40_000, rel=0.01)

    def test_count_correction_spreads_marks(self):
        """The 1/(1 - count*p) correction makes inter-mark gaps roughly
        uniform; over many packets the empirical rate is close to base."""
        red = RedMarker(0, 100_000, pmax=1.0, rng=random.Random(5))
        marks = sum(red.decide(50_000) for _ in range(4000))
        assert 0.3 <= marks / 4000 <= 0.7


class TestValidation:
    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            RedMarker(50_000, 10_000)

    def test_rejects_bad_pmax(self):
        with pytest.raises(ValueError):
            RedMarker(10_000, pmax=0.0)

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            RedMarker(10_000, ewma_weight=0.0)
