"""Shared test fixtures: tiny ports, packets, and traffic helpers."""

from __future__ import annotations

from typing import List, Optional

from repro.aqm.base import Aqm
from repro.net.packet import Packet, PacketKind
from repro.net.port import EgressPort
from repro.sched.base import Scheduler
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator
from repro.units import GBPS, HEADER, KB, MSS


def data_pkt(
    flow_id: int = 1,
    seq: int = 0,
    payload: int = MSS,
    ect: bool = True,
    dscp: int = 0,
    src: int = 0,
    dst: int = 1,
) -> Packet:
    """A data packet with sensible defaults."""
    return Packet(
        flow_id, src, dst, PacketKind.DATA,
        seq=seq, payload=payload, ect=ect, dscp=dscp,
    )


def make_port(
    sim: Simulator,
    scheduler: Optional[Scheduler] = None,
    aqm: Optional[Aqm] = None,
    rate_bps: int = GBPS,
    buffer_bytes: int = 1000 * KB,
    classify=None,
) -> EgressPort:
    """A standalone egress port with no downstream link (packets vanish
    after serialization) — enough for scheduler/AQM unit tests."""
    return EgressPort(
        sim,
        rate_bps=rate_bps,
        buffer_bytes=buffer_bytes,
        scheduler=scheduler or FifoScheduler(),
        aqm=aqm,
        link=None,
        classify=classify or (lambda pkt: pkt.dscp),
    )


def drain_in_order(scheduler: Scheduler, now: int = 0) -> List[Packet]:
    """Dequeue everything, returning packets in service order."""
    out = []
    while True:
        result = scheduler.dequeue(now)
        if result is None:
            return out
        out.append(result[0])


def fill(scheduler: Scheduler, qidx: int, n: int, size: int = MSS) -> None:
    """Enqueue ``n`` same-size packets into queue ``qidx``."""
    for i in range(n):
        scheduler.enqueue(data_pkt(flow_id=qidx + 1, seq=i, payload=size,
                                   dscp=qidx), qidx, 0)


def wire(payload: int) -> int:
    """Wire size for a payload."""
    return payload + HEADER
