"""DCQCN: rate-paced sending and the alpha/rate control laws."""

import pytest

from repro.core.tcn import ProbabilisticTcn, Tcn
from repro.net.host import Host
from repro.net.nic import make_nic
from repro.net.packet import Packet, PacketKind
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator
from repro.topo.star import StarTopology
from repro.transport.dcqcn import DcqcnSender
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.units import GBPS, KB, MB, MSEC, SEC, USEC


def _bare_sender(rate=10 * GBPS):
    sim = Simulator()
    nic = make_nic(sim, rate, link=None)
    host = Host(sim, 0, nic)
    flow = Flow(1, 0, 1, 100 * MB)
    sender = DcqcnSender(sim, host, flow, line_rate_bps=rate)
    return sim, sender


def _ack(sender, ack, ece):
    pkt = Packet(1, 1, 0, PacketKind.ACK, seq=ack)
    pkt.ece = ece
    sender.on_ack(pkt)


class TestControlLaws:
    def test_starts_at_line_rate(self):
        sim, s = _bare_sender()
        assert s.rc_bps == 10 * GBPS

    def test_mark_cuts_rate_by_alpha_half(self):
        sim, s = _bare_sender()
        s.start()
        _ack(s, 1, ece=True)
        # alpha starts at 1: first cut halves
        assert s.rc_bps == pytest.approx(5 * GBPS)
        assert s.rt_bps == pytest.approx(10 * GBPS)

    def test_one_cut_per_rate_period(self):
        sim, s = _bare_sender()
        s.start()
        _ack(s, 1, ece=True)
        _ack(s, 2, ece=True)
        assert s.rc_bps == pytest.approx(5 * GBPS)

    def test_alpha_rises_on_marks(self):
        sim, s = _bare_sender()
        s.start()
        before = s.alpha
        _ack(s, 1, ece=True)
        assert s.alpha >= before  # (1-g) x 1 + g = 1 at the ceiling

    def test_alpha_decays_without_marks(self):
        sim, s = _bare_sender()
        s.start()
        sim.run(until=2 * MSEC)  # many alpha-timer periods, no marks
        assert s.alpha < 0.2

    def test_fast_recovery_climbs_back(self):
        sim, s = _bare_sender()
        s.start()
        _ack(s, 1, ece=True)
        cut_rate = s.rc_bps
        sim.run(until=3 * MSEC)  # ~10 rate-timer periods, no further marks
        assert s.rc_bps > cut_rate
        assert s.rc_bps <= 10 * GBPS

    def test_rate_floor(self):
        sim, s = _bare_sender()
        s.start()
        s.rc_bps = s.min_rate_bps
        s._cut_since_rate_timer = False
        _ack(s, 1, ece=True)
        assert s.rc_bps >= s.min_rate_bps


class TestPacing:
    def test_paced_transfer_completes(self):
        sim = Simulator()
        topo = StarTopology(
            sim, 3, 10 * GBPS,
            sched_factory=FifoScheduler,
            aqm_factory=lambda: Tcn(100 * USEC),
            buffer_bytes=300 * KB,
            link_delay_ns=20_000,
        )
        flow = Flow(1, 1, 0, 5 * MB)
        Receiver(sim, topo.hosts[0], flow)
        s = DcqcnSender(sim, topo.hosts[1], flow, line_rate_bps=10 * GBPS)
        sim.schedule(0, s.start)
        sim.run(until=5 * SEC)
        assert flow.completed

    def test_two_dcqcn_flows_share_under_probabilistic_tcn(self):
        """The paper's future-work pairing: DCQCN + probabilistic TCN —
        both flows finish and neither starves."""
        import random

        sim = Simulator()
        topo = StarTopology(
            sim, 3, 10 * GBPS,
            sched_factory=FifoScheduler,
            aqm_factory=lambda: ProbabilisticTcn(
                50 * USEC, 200 * USEC, pmax=0.8, rng=random.Random(3)
            ),
            buffer_bytes=600 * KB,
            link_delay_ns=20_000,
        )
        flows = [Flow(i + 1, i + 1, 0, 30 * MB) for i in range(2)]
        for f in flows:
            Receiver(sim, topo.hosts[0], f)
            s = DcqcnSender(
                sim, topo.hosts[f.src], f, line_rate_bps=10 * GBPS
            )
            sim.schedule(0, s.start)
        sim.run(until=5 * SEC)
        assert all(f.completed for f in flows)
        fcts = [f.fct_ns for f in flows]
        assert max(fcts) < 3 * min(fcts)  # rough fairness

    def test_rate_cut_slows_pacing(self):
        sim = Simulator()
        topo = StarTopology(
            sim, 3, 10 * GBPS,
            sched_factory=FifoScheduler,
            aqm_factory=lambda: Tcn(50 * USEC),
            buffer_bytes=2 * MB,
            link_delay_ns=20_000,
        )
        # 8 competing senders force marks; the flow must end below line rate
        flows = [Flow(i + 1, 1 + i % 2, 0, 10 * MB) for i in range(4)]
        senders = []
        for f in flows:
            Receiver(sim, topo.hosts[0], f)
            s = DcqcnSender(sim, topo.hosts[f.src], f, line_rate_bps=10 * GBPS)
            senders.append(s)
            sim.schedule(0, s.start)
        sim.run(until=2 * SEC)
        assert all(f.completed for f in flows)
        # contention produced marks and every sender reacted to them
        assert all(s.stats.ecn_acks > 0 for s in senders)
        # 4 x 10 MB through one 10G port takes at least the fluid-limit time
        assert max(f.fct_ns for f in flows) >= 30 * MSEC
