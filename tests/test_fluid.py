"""The fluid engine: solver algebra, exactness, accuracy, determinism.

Four layers of guarantees, cheapest first:

* the max-min solver is pure and matches hand-computed water-filling
  allocations;
* on *static* single-bottleneck configurations (equal flows, zero
  propagation delay where the ramp model vanishes) the fluid engine's
  FCTs equal the analytic shares **exactly** — integer nanoseconds, no
  tolerance;
* on a small leaf-spine, hybrid mode's promoted-flow FCT distribution
  stays within the 5% acceptance bands of the packet engine (pooled
  over three seeds; everything is seeded, so the deviations are exact
  reproducible numbers — the full harness is ``python -m repro
  fluidcheck``, see docs/FLUID.md);
* fluid/hybrid runs at a fixed seed are pinned by SHA-256 digests, the
  same guard the packet engine gets from the golden traces — and the
  new ``mode``/``fluid_size_bytes`` config fields invalidate the sweep
  cache like any other field.
"""

import hashlib
import json

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.harness.sweep import (
    ResultCache,
    config_fingerprint,
    config_key,
    run_sweep,
)
from repro.metrics.fct import FctCollector, percentile
from repro.sim.engine import Simulator
from repro.sim.fluid.model import FluidFlow, FluidLink
from repro.sim.fluid.network import FluidNetwork
from repro.sim.fluid.solver import max_min_shares
from repro.transport.flow import Flow


class TestMaxMinSolver:
    def test_equal_split_on_shared_link(self):
        rates, bottlenecks, iters = max_min_shares(
            [10e9], [[0], [0], [0], [0]]
        )
        assert rates == [2.5e9] * 4
        assert bottlenecks == {0}
        assert iters == 1

    def test_two_bottlenecks(self):
        # flow 1 is capped at 4 by link 1; flow 0 takes the remaining 6
        rates, bottlenecks, _ = max_min_shares(
            [10.0, 4.0], [[0], [0, 1]]
        )
        assert rates == [6.0, 4.0]
        assert bottlenecks == {0, 1}

    def test_disjoint_flows_get_full_capacity(self):
        rates, _, _ = max_min_shares([5.0, 3.0], [[0], [1]])
        assert rates == [5.0, 3.0]

    def test_three_tier_waterfill(self):
        # classic example: links 12/6/2, flows a=[0], b=[0,1], c=[1,2].
        # c is capped at 2 by link 2; b then gets 6-2=4 on link 1;
        # a takes the 12-4=8 left on link 0.
        rates, bottlenecks, iters = max_min_shares(
            [12.0, 6.0, 2.0], [[0], [0, 1], [1, 2]]
        )
        assert rates == [8.0, 4.0, 2.0]
        assert bottlenecks == {0, 1, 2}
        assert iters == 3

    def test_no_flows(self):
        assert max_min_shares([1.0], []) == ([], set(), 0)

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            max_min_shares([1.0], [[0], []])

    def test_deterministic(self):
        caps = [7.0, 3.0, 5.0]
        paths = [[0, 1], [1, 2], [0, 2], [2]]
        assert max_min_shares(caps, paths) == max_min_shares(caps, paths)


def _static_run(sizes, capacity_bps, path_delay_ns=0):
    """Drive a hand-built single-link FluidNetwork to completion."""
    sim = Simulator()
    link = FluidLink(None, capacity_bps)
    flows = [
        FluidFlow(Flow(i, 0, 1, size), (0,), path_delay_ns)
        for i, size in enumerate(sizes)
    ]
    collector = FctCollector()
    net = FluidNetwork(sim, flows, [link], collector)
    net.on_start()
    sim.run()
    return net, flows


class TestStaticSingleBottleneckExact:
    """Fluid FCTs equal the analytic shares exactly — no tolerance."""

    def test_equal_flows_split_the_link_exactly(self):
        # 4 x 1 MB over 1 Gb/s: each gets 250 Mb/s, finishing together
        # at exactly 32 ms; + 1 us one-way delay for last-byte delivery.
        net, flows = _static_run(
            [1_000_000] * 4, capacity_bps=1e9, path_delay_ns=1_000
        )
        assert net.done and net.completed == 4
        assert [fl.flow.fct_ns for fl in flows] == [32_000_000 + 1_000] * 4

    def test_staggered_finish_is_exact_at_zero_rtt(self):
        # 1 MB + 2 MB over 1 Gb/s, zero delay (so the CA ramp deficit,
        # which scales with RTT^2, vanishes and the step model is
        # exact).  Both run at 500 Mb/s until the small flow finishes
        # at 16 ms; the large one then takes the full link for its
        # remaining 1 MB: 16 ms + 8 ms = 24 ms.
        net, flows = _static_run([1_000_000, 2_000_000], capacity_bps=1e9)
        assert flows[0].flow.fct_ns == 16_000_000
        assert flows[1].flow.fct_ns == 24_000_000

    def test_share_rise_with_rtt_charges_the_ramp_deficit(self):
        # same staggered config but a real RTT: the surviving flow's
        # share doubles mid-flight, and the congestion-avoidance ramp
        # model charges a strictly positive convergence lag on top of
        # the step-model time (2 x one-way delay bounds last-byte
        # delivery; the deficit is what pushes it past analytic).
        _, flows = _static_run(
            [1_000_000, 2_000_000], capacity_bps=1e9, path_delay_ns=50_000
        )
        assert flows[0].flow.fct_ns == 16_000_000 + 50_000
        assert flows[1].flow.fct_ns > 24_000_000 + 50_000

    def test_saturated_link_state_and_stats(self):
        net, _ = _static_run([1_000_000] * 2, capacity_bps=1e9)
        link = net.links[0]
        assert link.saturated
        assert net.stats_dict() == {
            "flows": 2,
            "completed": 2,
            # one epoch per flow start; the shared finish completes
            # everything and restores without another solve
            "epochs": 2,
            "solver_iterations": 2,
            # saturation flips on at the first resolve and stays
            "threshold_crossings": 1,
        }


#: small leaf-spine cross-validation: promoted (>= 1 MB) flows pooled
#: over three seeds, hybrid vs packet-exact.  The bands are the PR
#: acceptance bands; every run is seeded, so a failure is a behaviour
#: change, not noise.
_XVAL_BASE = dict(
    scheme="tcn",
    scheduler="sp_dwrr",
    topology="leafspine",
    n_leaf=2,
    n_spine=2,
    hosts_per_leaf=4,
    workload="bulk",
    workload_clip_bytes=2_000_000,
    load=0.1,
    n_flows=40,
)
_XVAL_SEEDS = (1, 2, 3)
_PROMOTION = 1_000_000


def _pooled(mode):
    fcts, goodputs = [], []
    for seed in _XVAL_SEEDS:
        result = run_experiment(
            ExperimentConfig(
                mode=mode, fluid_size_bytes=_PROMOTION, seed=seed,
                **_XVAL_BASE,
            )
        )
        for flow in result.flows:
            if flow.size_bytes >= _PROMOTION and flow.completed:
                fcts.append(flow.fct_ns)
                goodputs.append(flow.size_bytes * 8e9 / flow.fct_ns)
    return fcts, goodputs


class TestHybridAccuracyOnLeafSpine:
    @pytest.fixture(scope="class")
    def pools(self):
        return _pooled("packet"), _pooled("hybrid")

    def test_every_promoted_flow_completes_in_both_modes(self, pools):
        (ref_fcts, _), (hyb_fcts, _) = pools
        assert len(ref_fcts) == len(hyb_fcts) > 0

    def test_fct_percentiles_within_five_percent(self, pools):
        (ref_fcts, _), (hyb_fcts, _) = pools
        p50_dev = percentile(hyb_fcts, 50) / percentile(ref_fcts, 50) - 1.0
        p99_dev = percentile(hyb_fcts, 99) / percentile(ref_fcts, 99) - 1.0
        assert abs(p50_dev) <= 0.05, f"p50 deviation {p50_dev:+.1%}"
        assert abs(p99_dev) <= 0.05, f"p99 deviation {p99_dev:+.1%}"

    def test_mean_goodput_within_five_percent(self, pools):
        (_, ref_gp), (_, hyb_gp) = pools
        dev = (sum(hyb_gp) / len(hyb_gp)) / (sum(ref_gp) / len(ref_gp)) - 1.0
        assert abs(dev) <= 0.05, f"goodput deviation {dev:+.1%}"


#: digest pins for the fluid engine, captured the same way as the
#: packet engine's golden traces: run the config, sha256 the
#: json.dumps of the FCT vector.  Any change to solver arithmetic,
#: epoch ordering, promotion policy or the hybrid coupling flips one.
_FLUID_GOLDEN = {
    "star_bulk_fluid": {
        "config": dict(
            scheme="tcn", scheduler="dwrr", workload="bulk",
            workload_clip_bytes=2_000_000, load=0.3, n_flows=20,
            seed=3, mode="fluid", fluid_size_bytes=1_000_000,
        ),
        "fct_sha256": (
            "1eaa2b8806b1ac83a0a41753332e4a8377ab4973999ed1eb6499a59dd91baa50"
        ),
        "completed": 20,
        "total": 20,
        "fluid_stats": {
            "flows": 20,
            "completed": 20,
            "epochs": 39,
            "solver_iterations": 26,
            "threshold_crossings": 31,
        },
    },
    "star_bulk_hybrid": {
        "config": dict(
            scheme="tcn", scheduler="dwrr", workload="bulk",
            workload_clip_bytes=2_000_000, load=0.3, n_flows=20,
            seed=3, mode="hybrid", fluid_size_bytes=1_000_000,
        ),
        "fct_sha256": (
            "0ffc526748b3db0e6397b38355ed285cdfcf01ceacf96933c0cfb0088cb5180b"
        ),
        "completed": 20,
        "total": 20,
        "fluid_stats": {
            "flows": 9,
            "completed": 9,
            "epochs": 87,
            "solver_iterations": 28,
            "threshold_crossings": 11,
        },
    },
}


class TestFluidGoldenDigests:
    @pytest.fixture(scope="class")
    def runs(self):
        return {
            name: run_experiment(ExperimentConfig(**golden["config"]))
            for name, golden in _FLUID_GOLDEN.items()
        }

    @pytest.mark.parametrize("name", sorted(_FLUID_GOLDEN))
    def test_fct_vector_matches_golden(self, runs, name):
        fcts = [f.fct_ns for f in runs[name].flows]
        digest = hashlib.sha256(json.dumps(fcts).encode()).hexdigest()
        assert digest == _FLUID_GOLDEN[name]["fct_sha256"]

    @pytest.mark.parametrize("name", sorted(_FLUID_GOLDEN))
    def test_counters_and_fluid_stats_match_golden(self, runs, name):
        golden = _FLUID_GOLDEN[name]
        result = runs[name]
        assert result.completed == golden["completed"]
        assert result.total == golden["total"]
        assert result.profile["fluid_stats"] == golden["fluid_stats"]

    @pytest.mark.parametrize("name", sorted(_FLUID_GOLDEN))
    def test_rerun_is_bit_identical(self, runs, name):
        again = run_experiment(
            ExperimentConfig(**_FLUID_GOLDEN[name]["config"])
        )
        assert [f.fct_ns for f in again.flows] == [
            f.fct_ns for f in runs[name].flows
        ]


_CACHE_BASE = dict(
    scheme="tcn", scheduler="dwrr", workload="cache",
    load=0.5, n_flows=8, seed=1,
)


class TestModeInSweepCacheFingerprint:
    """New-field invalidation: ``mode``/``fluid_size_bytes`` are part
    of the cache identity (the fingerprint strips only the
    result-invariant execution knobs: equeue, workers, batch,
    sanitize)."""

    def test_fingerprint_includes_the_new_fields(self):
        fields = json.loads(
            config_fingerprint(ExperimentConfig(**_CACHE_BASE))
        )
        assert fields["mode"] == "packet"
        assert fields["fluid_size_bytes"] == 1_000_000

    def test_mode_change_changes_the_key(self):
        base = config_key(ExperimentConfig(**_CACHE_BASE))
        for variant in (
            ExperimentConfig(mode="hybrid", **_CACHE_BASE),
            ExperimentConfig(mode="fluid", **_CACHE_BASE),
            ExperimentConfig(fluid_size_bytes=500_000, **_CACHE_BASE),
        ):
            assert config_key(variant) != base

    def test_mode_change_is_a_cache_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(
            [ExperimentConfig(**_CACHE_BASE)], processes=0, cache=cache
        )
        hybrid = run_sweep(
            [ExperimentConfig(mode="hybrid", **_CACHE_BASE)],
            processes=0,
            cache=cache,
        )
        assert hybrid.stats.cache_hits == 0
        assert hybrid.stats.cache_misses == 1
