"""FCT statistics and time-series metrics."""

import pytest

from repro.metrics.fct import (
    FctCollector,
    SMALL_MAX_BYTES,
    LARGE_MIN_BYTES,
    normalized,
    percentile,
)
from repro.metrics.timeseries import GoodputTracker, OccupancySampler
from repro.sim.engine import Simulator
from repro.transport.flow import Flow
from repro.units import GBPS, KB, MB, SEC
from tests.helpers import data_pkt, make_port


def _flow(fid, size, fct):
    f = Flow(fid, 0, 1, size)
    f.fct_ns = fct
    f.completed = True
    return f


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 99) == 99
        assert percentile(values, 50) == 50
        assert percentile(values, 100) == 100
        assert percentile(values, 0) == 1

    def test_single_value(self):
        assert percentile([7], 99) == 7

    def test_unsorted_input(self):
        assert percentile([3, 1, 2], 100) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestFctCollector:
    def test_bins_match_paper(self):
        assert SMALL_MAX_BYTES == 100 * KB
        assert LARGE_MIN_BYTES == 10 * MB

    def test_summary_bins(self):
        c = FctCollector()
        c.on_complete(_flow(1, 50 * KB, 1000))      # small
        c.on_complete(_flow(2, 100 * KB, 3000))     # small (inclusive)
        c.on_complete(_flow(3, 1 * MB, 9000))       # medium
        c.on_complete(_flow(4, 20 * MB, 100_000))   # large
        s = c.summarize()
        assert s.n_small == 2 and s.n_medium == 1 and s.n_large == 1
        assert s.avg_small_ns == 2000
        assert s.avg_large_ns == 100_000
        assert s.avg_all_ns == pytest.approx((1000 + 3000 + 9000 + 100_000) / 4)

    def test_p99_small(self):
        c = FctCollector()
        for i in range(100):
            c.on_complete(_flow(i, 10 * KB, (i + 1) * 100))
        assert c.summarize().p99_small_ns == 9900

    def test_empty_bins_are_none(self):
        c = FctCollector()
        c.on_complete(_flow(1, 1 * MB, 5000))
        s = c.summarize()
        assert s.avg_small_ns is None and s.avg_large_ns is None
        assert s.avg_medium_ns == 5000

    def test_empty_collector_raises(self):
        with pytest.raises(ValueError):
            FctCollector().summarize()

    def test_normalized(self):
        c1, c2 = FctCollector(), FctCollector()
        c1.on_complete(_flow(1, 10 * KB, 1000))
        c2.on_complete(_flow(1, 10 * KB, 2500))
        summaries = {"tcn": c1.summarize(), "red": c2.summarize()}
        norm = normalized(summaries, "tcn", "avg_small_ns")
        assert norm["tcn"] == 1.0
        assert norm["red"] == 2.5


class TestGoodputTracker:
    def test_windowed_rate(self):
        t = GoodputTracker()
        # 1250 bytes every 10 us for 1 ms = 1 Gbps
        for i in range(100):
            t.record(0, 1250, (i + 1) * 10_000)
        assert t.goodput_bps(0, 0, 1_000_000) == pytest.approx(1 * GBPS)

    def test_window_excludes_outside(self):
        t = GoodputTracker()
        t.record(0, 1000, 100)
        t.record(0, 1000, 2000)
        assert t.goodput_bps(0, 500, 2500) == pytest.approx(1000 * 8 * SEC / 2000)

    def test_series_bins(self):
        t = GoodputTracker()
        t.record(1, 1000, 500)
        t.record(1, 3000, 1500)
        series = t.series_bps(1, bin_ns=1000, t_end_ns=2000)
        assert len(series) == 2
        assert series[0][1] == pytest.approx(1000 * 8 * SEC / 1000)
        assert series[1][1] == pytest.approx(3000 * 8 * SEC / 1000)

    def test_keys_and_totals(self):
        t = GoodputTracker()
        t.record(3, 500, 10)
        t.record(3, 700, 20)
        assert t.total_bytes(3) == 1200
        assert t.keys() == [3]

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            GoodputTracker().goodput_bps(0, 10, 10)


class TestOccupancySampler:
    def test_event_driven_trace(self):
        sim = Simulator()
        port = make_port(sim)
        sampler = OccupancySampler(port)
        for i in range(3):
            port.receive(data_pkt(seq=i))
        sim.run()
        assert sampler.peak_bytes == 2 * 1500  # one always in flight
        assert sampler.samples[-1][1] == 0

    def test_periodic_sampling(self):
        sim = Simulator()
        port = make_port(sim)
        sampler = OccupancySampler(port, event_driven=False)
        sampler.start_periodic(sim, period_ns=1000)
        sim.run(until=5000)
        assert len(sampler.samples) == 5

    def test_windows(self):
        sim = Simulator()
        port = make_port(sim)
        sampler = OccupancySampler(port, event_driven=False)
        sampler.samples = [(0, 10), (100, 30), (200, 20)]
        assert sampler.max_in_window(50, 250) == 30
        assert sampler.mean_in_window(50, 250) == 25.0
        assert sampler.max_in_window(300, 400) == 0


class TestBisectQueriesMatchLinearScan:
    """The O(log n) query paths must agree with the obvious O(n) scans."""

    def _goodput_events(self):
        # deliberately includes duplicate timestamps and zero-size events
        import random

        rng = random.Random(7)
        t = 0
        events = []
        for _ in range(500):
            t += rng.choice([0, 1, 5, 40])
            events.append((t, rng.choice([0, 100, 1250, 9000])))
        return events

    def test_goodput_windows(self):
        events = self._goodput_events()
        tracker = GoodputTracker()
        for t, b in events:
            tracker.record(0, b, t)
        t_max = events[-1][0]
        for t_from, t_to in [(0, t_max), (100, 900), (t_max, t_max + 10),
                             (-5, 3), (37, 38)]:
            linear = sum(b for t, b in events if t_from < t <= t_to)
            expected = linear * 8 * SEC / (t_to - t_from)
            assert tracker.goodput_bps(0, t_from, t_to) == pytest.approx(
                expected
            ), (t_from, t_to)

    def test_occupancy_windows(self):
        import random

        rng = random.Random(11)
        samples, t = [], 0
        for _ in range(300):
            t += rng.choice([0, 2, 17])
            samples.append((t, rng.randrange(0, 5000)))
        sim = Simulator()
        sampler = OccupancySampler(make_port(sim), event_driven=False)
        sampler.samples = samples
        assert sampler.peak_bytes == max(occ for _, occ in samples)
        t_max = samples[-1][0]
        for t_from, t_to in [(0, t_max), (50, 500), (t_max + 1, t_max + 9),
                             (13, 13)]:
            window = [occ for t, occ in samples if t_from <= t <= t_to]
            assert sampler.max_in_window(t_from, t_to) == (
                max(window) if window else 0
            ), (t_from, t_to)
            expected_mean = sum(window) / len(window) if window else 0.0
            assert sampler.mean_in_window(t_from, t_to) == pytest.approx(
                expected_mean
            ), (t_from, t_to)
