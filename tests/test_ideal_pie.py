"""IdealRed (Equation 2 via Algorithm 1) and the PIE extension."""

import pytest

from repro.aqm.ideal import IdealRed
from repro.aqm.pie import Pie
from repro.sched.base import make_queues
from repro.sched.dwrr import DwrrScheduler
from repro.sim.engine import Simulator
from repro.units import GBPS, KB, MSEC, USEC
from tests.helpers import data_pkt, fill, make_port


def _ideal_port(rate=10 * GBPS, rtt=100 * USEC, dq=10 * KB):
    sim = Simulator()
    sched = DwrrScheduler(make_queues(2, quanta=[1500, 1500]))
    aqm = IdealRed(rtt, dq_thresh_bytes=dq)
    port = make_port(sim, scheduler=sched, aqm=aqm, rate_bps=rate)
    return sim, port, sched, aqm


class TestIdealRed:
    def test_threshold_starts_at_standard(self):
        sim, port, sched, aqm = _ideal_port()
        assert aqm.threshold_bytes(sched.queues[0]) == pytest.approx(125_000)

    def test_threshold_follows_measured_rate(self):
        sim, port, sched, aqm = _ideal_port()
        q0 = sched.queues[0]
        meter = aqm.meter_for(q0)
        meter._absorb(5 * GBPS, 0)
        assert aqm.threshold_bytes(q0) == pytest.approx(62_500, rel=0.01)

    def test_rate_capped_at_line(self):
        sim, port, sched, aqm = _ideal_port()
        q0 = sched.queues[0]
        aqm.meter_for(q0)._absorb(50 * GBPS, 0)
        assert aqm.threshold_bytes(q0) == pytest.approx(125_000, rel=0.01)

    def test_marks_against_dynamic_threshold(self):
        sim, port, sched, aqm = _ideal_port()
        q0 = sched.queues[0]
        aqm.meter_for(q0)._absorb(GBPS, 0)  # K_0 = 12.5 KB
        fill(sched, 0, 10)  # 15 KB
        assert aqm.on_enqueue(port, q0, data_pkt(), 0) is True

    def test_dequeues_feed_the_meter(self):
        sim, port, sched, aqm = _ideal_port()
        q0 = sched.queues[0]
        for i in range(60):
            port.receive(data_pkt(seq=i, dscp=0))
        sim.run()
        assert aqm.meter_for(q0).sample_count > 0
        # one backlogged queue drains at the full line rate (samples carry
        # the Algorithm 1 opening-departure bias of ~7/6)
        assert aqm.meter_for(q0).avg_rate == pytest.approx(
            10 * GBPS * 7 / 6, rel=0.1
        )

    def test_per_queue_meters_isolated(self):
        sim, port, sched, aqm = _ideal_port()
        assert aqm.meter_for(sched.queues[0]) is not aqm.meter_for(sched.queues[1])


class TestPie:
    def _pie_port(self):
        sim = Simulator()
        sched = DwrrScheduler(make_queues(2, quanta=[1500, 1500]))
        aqm = Pie(target_delay_ns=100 * USEC, update_interval_ns=100 * USEC)
        port = make_port(sim, scheduler=sched, aqm=aqm, rate_bps=GBPS)
        return sim, port, sched, aqm

    def test_probability_starts_at_zero(self):
        sim, port, sched, aqm = self._pie_port()
        assert aqm.on_enqueue(port, sched.queues[0], data_pkt(), 0) is False

    def test_probability_rises_under_standing_delay(self):
        sim, port, sched, aqm = self._pie_port()
        q0 = sched.queues[0]
        # hold a large standing backlog while updates fire
        fill(sched, 0, 200)  # 300 KB ~ 2.4 ms of delay at 1 Gbps
        port.occupancy = sched.total_bytes
        sim.run(until=5 * MSEC)
        st = aqm._state[id(q0)]
        assert st.prob > 0.0

    def test_probability_decays_when_empty(self):
        sim, port, sched, aqm = self._pie_port()
        q0 = sched.queues[0]
        aqm._state[id(q0)].prob = 0.9
        sim.run(until=20 * MSEC)  # queue empty the whole time
        assert aqm._state[id(q0)].prob < 0.9

    def test_updates_keep_firing(self):
        sim, port, sched, aqm = self._pie_port()
        sim.run(until=1 * MSEC)
        assert sim.pending > 0  # the periodic update is still scheduled
