"""RTO timer churn: the event heap must scale with flows, not packets.

Before the lazy-timer rework, every ACK cancelled and re-pushed the
sender's RTO event, leaving one tombstone per ACK in the heap until its
(far-future) deadline surfaced — the heap high-water mark grew with the
packet count.  A lazy deadline-checked timer keeps at most one live tick
per sender, so the high-water mark is O(flows).  These tests pin that.
"""

from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.net.host import Host
from repro.net.link import Link
from repro.net.nic import make_nic
from repro.sim.engine import Simulator
from repro.transport.dctcp import DctcpSender
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.units import GBPS, KB, MB, SEC, USEC


def _wire():
    """Two hosts back-to-back (no switch), 1 Gbps, 100 us RTT."""
    sim = Simulator()
    nic_b = make_nic(sim, GBPS, link=None)
    host_b = Host(sim, 1, nic_b)
    nic_a = make_nic(sim, GBPS, link=None)
    host_a = Host(sim, 0, nic_a)
    nic_a.link = Link(host_b, 50 * USEC)
    nic_b.link = Link(host_a, 50 * USEC)
    return sim, host_a, host_b


class TestRtoHeapChurn:
    def test_single_flow_heap_stays_flat(self):
        """~3500 data packets and as many ACKs: the heap must stay tiny.

        With cancel+repush RTO management the high-water mark tracked the
        ACK count (thousands); with lazy timers it is bounded by the
        handful of genuinely concurrent events a single flow can have.
        """
        sim, host_a, host_b = _wire()
        flow = Flow(1, 0, 1, 5 * MB)
        Receiver(sim, host_b, flow)
        sender = DctcpSender(sim, host_a, flow)
        sim.schedule(0, sender.start)
        sim.run(until=30 * SEC)
        assert flow.completed
        assert flow.npkts > 3000  # the run really did move many packets
        assert sim.heap_hwm < 64

    def test_rearm_pushes_at_most_one_tick(self):
        """Re-arming (the per-ACK operation) must not grow the heap."""
        sim, host_a, _ = _wire()
        flow = Flow(1, 0, 1, 100 * KB)
        sender = DctcpSender(sim, host_a, flow)
        before = sim.pending
        for _ in range(500):
            sender._arm_rto()
        assert sim.pending <= before + 1

    def test_experiment_heap_hwm_scales_with_flows(self):
        """Many-flow run: high-water mark O(flows), far below O(packets)."""
        n_flows = 100
        result = run_experiment(
            ExperimentConfig(
                scheme="tcn",
                scheduler="dwrr",
                workload="cache",
                load=0.9,
                n_flows=n_flows,
                seed=13,
            )
        )
        hwm = result.profile["heap_hwm"]
        events = result.profile["events"]
        assert hwm <= 2 * n_flows + 64
        # each executed event is roughly one heap entry's lifetime: the
        # high-water mark must be orders of magnitude below the churn
        assert hwm * 20 < events
