"""Algorithm 1: the PIE departure-rate meter, including its documented
failure modes (the heart of §3.3)."""

import pytest

from repro.aqm.ratemeter import RateMeter
from repro.units import GBPS, KB, SEC, USEC


def _feed_constant_rate(meter, rate_bps, qlen, n_pkts, pkt=1500):
    """Departures of ``pkt``-byte packets back-to-back at ``rate_bps``."""
    gap = pkt * 8 * SEC // rate_bps
    now = 0
    for _ in range(n_pkts):
        now += gap
        meter.on_departure(qlen, pkt, now)
    return now


class TestMeasurementCycle:
    def test_no_cycle_below_threshold(self):
        meter = RateMeter(10 * KB)
        _feed_constant_rate(meter, GBPS, qlen=5 * KB, n_pkts=100)
        assert meter.avg_rate is None
        assert meter.sample_count == 0

    def test_measures_line_rate_with_algorithm1_bias(self):
        """A 10 KB cycle of 1500 B packets counts 7 packets over 6 gaps:
        Algorithm 1's opening departure contributes bytes but no time, so
        the sample reads 7/6 of the true rate (see the module docstring)."""
        meter = RateMeter(10 * KB)
        _feed_constant_rate(meter, GBPS, qlen=50 * KB, n_pkts=100)
        assert meter.avg_rate == pytest.approx(GBPS * 7 / 6, rel=0.02)

    def test_bias_shrinks_with_larger_thresh(self):
        meter = RateMeter(60 * KB)
        _feed_constant_rate(meter, GBPS, qlen=100 * KB, n_pkts=200)
        assert meter.avg_rate == pytest.approx(GBPS * 41 / 40, rel=0.02)

    def test_cycle_needs_more_than_thresh_bytes(self):
        """A sample closes only when dq_count exceeds dq_thresh."""
        meter = RateMeter(10 * KB)
        # 7 packets = 10.5 KB > 10 KB -> exactly one sample
        _feed_constant_rate(meter, GBPS, qlen=50 * KB, n_pkts=7)
        assert meter.sample_count == 1

    def test_ewma_weight(self):
        meter = RateMeter(10 * KB, avg_weight=0.5)
        meter._absorb(10 * GBPS, 0)
        meter._absorb(2 * GBPS, 1)
        assert meter.avg_rate == pytest.approx(6 * GBPS)

    def test_rate_or_default_before_samples(self):
        meter = RateMeter(10 * KB)
        assert meter.rate_or(123.0) == 123.0

    def test_sample_recording(self):
        meter = RateMeter(10 * KB, record_samples=True)
        _feed_constant_rate(meter, GBPS, qlen=50 * KB, n_pkts=50)
        assert len(meter.samples) == meter.sample_count
        t, raw, smoothed = meter.samples[0]
        assert raw > 0 and smoothed > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RateMeter(0)
        with pytest.raises(ValueError):
            RateMeter(10 * KB, avg_weight=1.0)


class TestFailureModes:
    """The §3.3 tradeoff, in miniature."""

    def test_small_thresh_oscillates_under_round_robin(self):
        """dq_thresh below the scheduler's service burst: cycles that fall
        within one burst read the line rate; cycles spanning the gap read a
        lower rate.  Samples must disagree wildly."""
        meter = RateMeter(10 * KB, record_samples=True)
        now = 0
        gap = 1500 * 8 * SEC // (10 * GBPS)  # 1.2us per pkt at 10G
        for _burst in range(200):
            # serve a 18 KB burst (12 pkts) at line rate...
            for _ in range(12):
                now += gap
                meter.on_departure(40 * KB, 1500, now)
            # ...then wait while the other queue is served
            now += 12 * gap
        raw = [s for _, s, _ in meter.samples]
        assert max(raw) / min(raw) > 1.5, "expected oscillating samples"
        # fast samples read the (bias-inflated) line rate; slow samples read
        # well under half of it — the 3.7-10 Gbps spread of Fig. 2b
        assert max(raw) == pytest.approx(10 * GBPS * 7 / 6, rel=0.05)
        assert min(raw) < 5 * GBPS

    def test_large_thresh_samples_slowly(self):
        """dq_thresh of 40 KB at ~5 Gbps: one sample per ~65 us, so a 2 ms
        window yields only ~30 samples (the paper's count is 29)."""
        meter = RateMeter(40 * KB, record_samples=True)
        _feed_constant_rate(meter, 5 * GBPS, qlen=100 * KB, n_pkts=850)
        in_2ms = [t for t, _, _ in meter.samples if t <= 2_000 * USEC]
        assert 25 <= len(in_2ms) <= 35

    def test_convergence_takes_many_samples(self):
        """With weight 0.875 on the old average, ~30 samples are needed to
        move from 10 Gbps to within 5% of 5 Gbps — the slow convergence of
        Fig. 2(a)."""
        meter = RateMeter(40 * KB, avg_weight=0.875)
        meter._absorb(10 * GBPS, 0)
        n = 0
        while abs(meter.avg_rate - 5 * GBPS) / (5 * GBPS) > 0.05:
            meter._absorb(5 * GBPS, n)
            n += 1
        assert 15 <= n <= 40
