"""The sender core: windowing, recovery, RTO, pacing — on a lossless and a
lossy two-host wire."""


from repro.net.host import Host
from repro.net.link import Link
from repro.net.nic import make_nic
from repro.sim.engine import Simulator
from repro.transport.dctcp import DctcpSender
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.transport.tcp import RenoSender
from repro.units import GBPS, KB, MB, MBPS, MSEC, SEC, USEC


class _Wire:
    """Two hosts connected back-to-back, optionally dropping data packets
    by sequence number on their first transmission."""

    def __init__(self, drop_seqs=(), delay_ns=50 * USEC, rate=GBPS):
        self.sim = Simulator()
        self.drop_seqs = set(drop_seqs)
        self.dropped = []

        class _Tap:
            """Sits between the sender NIC and the receiving host."""

            def __init__(tap, dst):
                tap.dst = dst

            def receive(tap, pkt):
                if (
                    pkt.seq in self.drop_seqs
                    and pkt.kind == 0
                    and not pkt.is_retx
                ):
                    self.drop_seqs.discard(pkt.seq)
                    self.dropped.append(pkt.seq)
                    return
                tap.dst.receive(pkt)

        # host B (receiver side) first so the tap can point at it
        nic_b = make_nic(self.sim, rate, link=None)
        self.host_b = Host(self.sim, 1, nic_b)
        nic_a = make_nic(self.sim, rate, link=None)
        self.host_a = Host(self.sim, 0, nic_a)
        nic_a.link = Link(_Tap(self.host_b), delay_ns)
        nic_b.link = Link(self.host_a, delay_ns)

    def transfer(self, sender_cls, size_bytes, drop_seqs=None, **kw):
        flow = Flow(1, 0, 1, size_bytes)
        Receiver(self.sim, self.host_b, flow)
        sender = sender_cls(self.sim, self.host_a, flow, **kw)
        self.sim.schedule(0, sender.start)
        self.sim.run(until=30 * SEC)
        return flow, sender


class TestReliableDelivery:
    def test_small_flow_completes(self):
        flow, sender = _Wire().transfer(DctcpSender, 10 * KB)
        assert flow.completed
        assert sender.done

    def test_single_packet_flow(self):
        flow, _ = _Wire().transfer(DctcpSender, 100)
        assert flow.completed

    def test_large_flow_completes(self):
        flow, _ = _Wire().transfer(DctcpSender, 5 * MB)
        assert flow.completed

    def test_fct_reasonable_for_uncongested_flow(self):
        """100 KB at 1 Gbps with 100 us RTT: a few RTTs of slow start."""
        flow, _ = _Wire().transfer(DctcpSender, 100 * KB, init_cwnd=10)
        assert flow.fct_ns < 4 * MSEC

    def test_throughput_near_line_rate(self):
        flow, _ = _Wire().transfer(DctcpSender, 10 * MB)
        rate = flow.size_bytes * 8 * SEC / flow.fct_ns
        assert rate > 0.9 * GBPS


class TestLossRecovery:
    def test_fast_retransmit_on_three_dupacks(self):
        wire = _Wire(drop_seqs=[5])
        flow, sender = wire.transfer(DctcpSender, 100 * KB, init_cwnd=16)
        assert flow.completed
        assert sender.stats.fast_retransmits >= 1
        assert sender.stats.timeouts == 0
        assert wire.dropped == [5]

    def test_multiple_losses_in_window_recovered(self):
        """NewReno partial-ACK retransmission handles several holes."""
        wire = _Wire(drop_seqs=[4, 6, 8])
        flow, sender = wire.transfer(DctcpSender, 100 * KB, init_cwnd=16)
        assert flow.completed

    def test_tail_loss_needs_timeout(self):
        """Dropping the final segment leaves no dupacks: RTO must fire."""
        size = 20 * KB
        last = Flow(99, 0, 1, size).npkts - 1
        wire = _Wire(drop_seqs=[last])
        flow, sender = wire.transfer(
            DctcpSender, size, init_cwnd=32, min_rto_ns=10 * MSEC
        )
        assert flow.completed
        assert sender.stats.timeouts >= 1
        assert flow.fct_ns >= 10 * MSEC

    def test_lost_first_window_recovers(self):
        wire = _Wire(drop_seqs=[0, 1, 2])
        flow, sender = wire.transfer(
            DctcpSender, 10 * KB, init_cwnd=4, min_rto_ns=10 * MSEC
        )
        assert flow.completed

    def test_cwnd_collapses_on_timeout(self):
        size = 20 * KB
        last = Flow(99, 0, 1, size).npkts - 1
        wire = _Wire(drop_seqs=[last])
        flow, sender = wire.transfer(DctcpSender, size, init_cwnd=32)
        assert sender.ssthresh >= 2.0
        # after the timeout cwnd restarted from 1 and regrew a little
        assert sender.cwnd < 32


class TestRto:
    def test_rtt_estimator_converges(self):
        wire = _Wire(delay_ns=50 * USEC)
        # a short flow stays near the base RTT (no self-induced queueing)
        flow, sender = wire.transfer(DctcpSender, 100 * KB, init_cwnd=10)
        assert sender.srtt_ns is not None
        assert 100 * USEC <= sender.srtt_ns <= 1000 * USEC

    def test_min_rto_floor(self):
        wire = _Wire(delay_ns=50 * USEC)
        flow, sender = wire.transfer(DctcpSender, 1 * MB, min_rto_ns=7 * MSEC)
        assert sender._base_rto_ns >= 7 * MSEC

    def test_backoff_doubles_and_resets(self):
        sim = Simulator()
        nic = make_nic(sim, GBPS, link=None)  # packets vanish: every RTO fires
        host = Host(sim, 0, nic)
        flow = Flow(1, 0, 1, 100 * KB)
        sender = DctcpSender(sim, host, flow, min_rto_ns=5 * MSEC)
        sim.schedule(0, sender.start)
        sim.run(until=100 * MSEC)
        # timeouts at t = 5, 15, 35, 75 ms (doubling gaps); the next would
        # land at 155 ms, past the horizon
        assert sender.stats.timeouts == 4


class TestAppPacing:
    def test_app_limited_rate_is_respected(self):
        wire = _Wire()
        flow, sender = wire.transfer(
            DctcpSender, 2 * MB, app_rate_bps=100 * MBPS
        )
        assert flow.completed
        rate = flow.size_bytes * 8 * SEC / flow.fct_ns
        assert rate <= 110 * MBPS
        assert rate >= 80 * MBPS

    def test_unpaced_is_faster(self):
        wire = _Wire()
        paced, _ = wire.transfer(DctcpSender, 1 * MB, app_rate_bps=100 * MBPS)
        wire2 = _Wire()
        free, _ = wire2.transfer(DctcpSender, 1 * MB)
        assert free.fct_ns < paced.fct_ns

    def test_cwnd_validation_freezes_growth_when_app_limited(self):
        wire = _Wire()
        flow, sender = wire.transfer(
            DctcpSender, 2 * MB, app_rate_bps=50 * MBPS, init_cwnd=10
        )
        # 50 Mbps over a ~100us RTT needs < 1 packet of window; cwnd must
        # not have ballooned into the thousands
        assert sender.cwnd < 100


class TestEcnNegotiation:
    def test_dctcp_sets_ect(self):
        seen = []
        wire = _Wire()
        orig = wire.host_b.receive

        def spy(pkt):
            if pkt.kind == 0:
                seen.append(pkt.ect)
            orig(pkt)

        wire.host_b.receive = spy
        wire.transfer(DctcpSender, 10 * KB)
        assert seen and all(seen)

    def test_reno_does_not_set_ect(self):
        seen = []
        wire = _Wire()
        orig = wire.host_b.receive

        def spy(pkt):
            if pkt.kind == 0:
                seen.append(pkt.ect)
            orig(pkt)

        wire.host_b.receive = spy
        wire.transfer(RenoSender, 10 * KB)
        assert seen and not any(seen)
