"""Packet framing, ECN bits, and ACK construction."""

from repro.net.packet import Packet, PacketKind, make_ack, make_data
from repro.units import ACK_SIZE, HEADER, MSS, PROBE_SIZE


class TestWireSizes:
    def test_data_wire_size_includes_header(self):
        pkt = make_data(1, 0, 1, seq=0, payload=MSS, ect=True, dscp=0, ts=0)
        assert pkt.wire_size == MSS + HEADER == 1500

    def test_short_payload(self):
        pkt = make_data(1, 0, 1, seq=0, payload=1, ect=True, dscp=0, ts=0)
        assert pkt.wire_size == 1 + HEADER

    def test_ack_wire_size(self):
        data = make_data(1, 0, 1, seq=0, payload=MSS, ect=True, dscp=3, ts=5)
        ack = make_ack(data, ack=1, ece=False, now=10)
        assert ack.wire_size == ACK_SIZE

    def test_probe_wire_size(self):
        probe = Packet(9, 0, 1, PacketKind.PROBE)
        assert probe.wire_size == PROBE_SIZE


class TestEcnBits:
    def test_fresh_packet_is_unmarked(self):
        pkt = make_data(1, 0, 1, seq=0, payload=MSS, ect=True, dscp=0, ts=0)
        assert pkt.ect and not pkt.ce and not pkt.ece

    def test_non_ect(self):
        pkt = make_data(1, 0, 1, seq=0, payload=MSS, ect=False, dscp=0, ts=0)
        assert not pkt.ect


class TestMakeAck:
    def _data(self, ce: bool):
        data = make_data(7, 2, 5, seq=4, payload=MSS, ect=True, dscp=3, ts=111)
        data.ce = ce
        return data

    def test_reverses_direction(self):
        ack = make_ack(self._data(False), ack=5, ece=False, now=200)
        assert (ack.src, ack.dst) == (5, 2)
        assert ack.kind == PacketKind.ACK

    def test_carries_cumulative_ack(self):
        ack = make_ack(self._data(False), ack=5, ece=False, now=200)
        assert ack.seq == 5

    def test_echoes_ce_as_ece(self):
        data = self._data(True)
        ack = make_ack(data, ack=5, ece=data.ce, now=200)
        assert ack.ece is True

    def test_same_service_class(self):
        ack = make_ack(self._data(False), ack=5, ece=False, now=200)
        assert ack.dscp == 3

    def test_echoes_timestamp(self):
        ack = make_ack(self._data(False), ack=5, ece=False, now=200)
        assert ack.ts_echo == 111
        assert ack.ts == 200

    def test_acks_are_not_ect_by_default(self):
        """Pure ACKs must never be CE-marked (they are not ECT)."""
        ack = make_ack(self._data(False), ack=5, ece=False, now=200)
        assert ack.ect is False
