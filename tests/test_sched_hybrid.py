"""SP/DWRR and SP/WFQ hybrids: the paper's production configurations."""

import pytest

from repro.sched.base import make_queues
from repro.sched.hybrid import SpDwrrScheduler, SpWfqScheduler
from tests.helpers import drain_in_order, fill


class TestSpOverLow:
    @pytest.mark.parametrize("cls", [SpDwrrScheduler, SpWfqScheduler])
    def test_high_queue_always_first(self, cls):
        s = cls(make_queues(4, quanta=[1500] * 4), n_high=1)
        fill(s, 2, 3)
        fill(s, 0, 2)
        fill(s, 3, 3)
        order = [p.dscp for p in drain_in_order(s)]
        assert order[:2] == [0, 0]

    @pytest.mark.parametrize("cls", [SpDwrrScheduler, SpWfqScheduler])
    def test_low_band_fair_among_itself(self, cls):
        s = cls(make_queues(3, quanta=[1500] * 3), n_high=1)
        fill(s, 1, 40)
        fill(s, 2, 40)
        served = {1: 0, 2: 0}
        for _ in range(40):
            pkt, queue = s.dequeue(0)
            served[pkt.dscp] += pkt.wire_size
        assert abs(served[1] - served[2]) <= 2 * 1500

    @pytest.mark.parametrize("cls", [SpDwrrScheduler, SpWfqScheduler])
    def test_high_arrival_preempts_low_backlog(self, cls):
        s = cls(make_queues(3, quanta=[1500] * 3), n_high=1)
        fill(s, 1, 5)
        s.dequeue(0)
        fill(s, 0, 1)
        pkt, _ = s.dequeue(0)
        assert pkt.dscp == 0

    @pytest.mark.parametrize("cls", [SpDwrrScheduler, SpWfqScheduler])
    def test_two_high_queues_ordered(self, cls):
        s = cls(make_queues(4, quanta=[1500] * 4), n_high=2)
        fill(s, 1, 1)
        fill(s, 0, 1)
        fill(s, 3, 1)
        order = [p.dscp for p in drain_in_order(s)]
        assert order == [0, 1, 3]

    @pytest.mark.parametrize("cls", [SpDwrrScheduler, SpWfqScheduler])
    def test_total_bytes_spans_both_bands(self, cls):
        s = cls(make_queues(3, quanta=[1500] * 3), n_high=1)
        fill(s, 0, 2)
        fill(s, 2, 3)
        assert s.total_bytes == 5 * 1500
        drain_in_order(s)
        assert s.is_empty

    @pytest.mark.parametrize("cls", [SpDwrrScheduler, SpWfqScheduler])
    def test_invalid_n_high_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(make_queues(3), n_high=3)
        with pytest.raises(ValueError):
            cls(make_queues(3), n_high=0)


class TestSpDwrrRounds:
    def test_rounds_supported_and_observer_wired(self):
        s = SpDwrrScheduler(make_queues(3, quanta=[1500] * 3), n_high=1)
        assert s.supports_rounds is True
        seen = []
        s.round_observer = lambda q, rt, now: seen.append(rt)
        fill(s, 1, 5)
        fill(s, 2, 5)
        now = 0
        for _ in range(10):
            s.dequeue(now)
            now += 10_000
        assert seen

    def test_spwfq_has_no_rounds(self):
        s = SpWfqScheduler(make_queues(3, quanta=[1500] * 3), n_high=1)
        assert s.supports_rounds is False
