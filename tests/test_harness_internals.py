"""Harness internals: connection pool, warm starts, workload clipping."""

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.runner import ConnectionPool, run_experiment
from repro.units import GBPS, KB, MB


class TestConnectionPool:
    def test_round_robin_over_connections(self):
        pool = ConnectionPool(per_pair=3, max_cwnd=64)
        keys = [pool.checkout(1, 0)[0] for _ in range(6)]
        assert keys == [(1, 0, 0), (1, 0, 1), (1, 0, 2)] * 2

    def test_cold_connection_has_no_hint(self):
        pool = ConnectionPool(per_pair=2, max_cwnd=64)
        _, warm = pool.checkout(1, 0)
        assert warm is None

    def test_warm_cwnd_returned_on_reuse(self):
        pool = ConnectionPool(per_pair=1, max_cwnd=64)
        key, _ = pool.checkout(1, 0)
        pool.release(key, 23.5)
        _, warm = pool.checkout(1, 0)
        assert warm == 23.5

    def test_warm_cwnd_capped(self):
        pool = ConnectionPool(per_pair=1, max_cwnd=32)
        key, _ = pool.checkout(1, 0)
        pool.release(key, 500.0)
        _, warm = pool.checkout(1, 0)
        assert warm == 32.0

    def test_pairs_are_independent(self):
        pool = ConnectionPool(per_pair=1, max_cwnd=64)
        key, _ = pool.checkout(1, 0)
        pool.release(key, 40.0)
        _, warm_other = pool.checkout(2, 0)
        assert warm_other is None


class TestPersistentConnectionsEndToEnd:
    def _cfg(self, persistent):
        # one connection per pair so reuse definitely happens with 40 flows
        return ExperimentConfig(
            scheme="tcn", scheduler="dwrr", workload="websearch",
            load=0.6, n_flows=40, seed=5,
            persistent_connections=persistent, connections_per_pair=1,
        )

    def test_runs_complete_both_ways(self):
        for persistent in (False, True):
            res = run_experiment(self._cfg(persistent))
            assert res.all_completed

    def test_warm_start_changes_dynamics(self):
        cold = run_experiment(self._cfg(False))
        warm = run_experiment(self._cfg(True))
        # identical workload, different window evolution
        assert cold.summary.avg_all_ns != warm.summary.avg_all_ns


class TestWorkloadClip:
    def test_clip_bounds_sizes(self):
        cfg = ExperimentConfig(
            scheme="tcn", scheduler="dwrr", workload="websearch",
            load=0.6, n_flows=60, seed=2, workload_clip_bytes=1 * MB,
        )
        res = run_experiment(cfg)
        assert max(f.size_bytes for f in res.flows) <= 1 * MB

    def test_clip_preserves_small_flows(self):
        from repro.workloads.distributions import WEB_SEARCH

        clipped = WEB_SEARCH.truncated(1 * MB)
        assert clipped.fraction_below(100 * KB) == pytest.approx(
            WEB_SEARCH.fraction_below(100 * KB), rel=0.01
        )

    def test_clip_validation(self):
        from repro.workloads.distributions import WEB_SEARCH

        with pytest.raises(ValueError):
            WEB_SEARCH.truncated(100)  # below the smallest knot


class TestBdpBoundedWindow:
    def test_max_cwnd_scales_with_bdp(self):
        """A 10G config allows a much larger window than a 1G config."""
        from repro.harness.runner import _wire_endpoints, _build_topology, _build_flows
        from repro.metrics.fct import FctCollector
        from repro.sim.engine import Simulator
        from repro.sim.rng import RngFactory

        windows = {}
        for rate in (GBPS, 10 * GBPS):
            cfg = ExperimentConfig(
                scheme="tcn", scheduler="dwrr", workload="cache",
                load=0.5, n_flows=3, seed=1, link_rate_bps=rate,
            )
            cfg.validate()
            sim = Simulator()
            topo = _build_topology(sim, cfg)
            flows = _build_flows(cfg, RngFactory(1), topo)
            senders = _wire_endpoints(
                sim, cfg, topo, flows, FctCollector(), None
            )
            windows[rate] = senders[0].max_cwnd
        assert windows[10 * GBPS] > windows[GBPS]
        assert windows[GBPS] >= 64.0
