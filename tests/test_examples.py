"""Smoke tests: the example scripts run and print sane output."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py", "25")
    assert "tcn" in out and "red_std" in out
    assert "avg(small)" in out


def test_service_isolation():
    out = _run("service_isolation.py", "--flows", "25", "--loads", "0.5")
    assert "DWRR" in out
    assert "mqecn" in out


def test_traffic_prioritization():
    out = _run("traffic_prioritization.py", "--flows", "25", "--load", "0.5")
    assert "SP_DWRR" in out
    assert "small-flow timeouts" in out
