"""The bench subsystem: scenario runs, JSON emission, regression gate."""

import json

import pytest

from repro.bench import (
    SCENARIOS,
    BenchResult,
    compare_results,
    load_results,
    run_scenario,
    write_result,
)
from repro.bench.cli import main as bench_main


def _backend_name(recorded):
    """Strip the sanitizer wrapper so backend-name pins hold under
    REPRO_SANITIZE=1 (the profile then records e.g. "sanitize(heap)")."""
    if recorded.startswith("sanitize(") and recorded.endswith(")"):
        return recorded[len("sanitize(") : -1]
    return recorded


def _result(scenario="port_saturation", eps=100_000.0, **kw):
    defaults = dict(
        scenario=scenario,
        events=1000,
        wall_s=0.01,
        events_per_sec=eps,
        heap_hwm=10,
        rss_hwm_bytes=0,
        fingerprint={"completed": 30, "total": 30},
    )
    defaults.update(kw)
    return BenchResult(**defaults)


class TestScenarios:
    def test_the_pinned_scenarios_exist(self):
        assert set(SCENARIOS) == {
            "engine_churn",
            "port_saturation",
            "incast",
            "leafspine_slice",
            "leafspine_full",
            "leafspine_fluid",
        }

    def test_run_scenario_produces_metrics(self):
        result = run_scenario("port_saturation")
        assert result.events > 0
        assert result.events_per_sec > 0
        assert result.wall_s > 0
        assert result.heap_hwm > 0
        assert result.fingerprint["completed"] == 30
        # packets flowed, so the freelist was exercised
        alloc = result.allocations
        assert alloc["packets_allocated"] + alloc["packets_reused"] > 0

    def test_engine_churn_needs_no_network(self):
        result = run_scenario("engine_churn")
        assert result.events == 200_001
        assert result.fingerprint["sim_ns"] == result.events * 10 - 10
        assert result.allocations == {
            "packets_allocated": 0,
            "packets_reused": 0,
        }

    def test_repeat_keeps_deterministic_fingerprint(self):
        result = run_scenario("port_saturation", repeat=2)
        assert result.repeat == 2
        assert result.fingerprint["completed"] == 30


class TestJsonRoundTrip:
    def test_write_then_load(self, tmp_path):
        result = _result()
        path = write_result(result, str(tmp_path))
        assert path.endswith("BENCH_port_saturation.json")
        loaded = load_results(str(tmp_path))
        assert set(loaded) == {"port_saturation"}
        back = loaded["port_saturation"]
        assert back.events_per_sec == result.events_per_sec
        assert back.fingerprint == result.fingerprint

    def test_load_single_file(self, tmp_path):
        path = write_result(_result(), str(tmp_path))
        assert "port_saturation" in load_results(path)

    def test_load_empty_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_results(str(tmp_path))

    def test_json_is_versioned_and_sorted(self, tmp_path):
        path = write_result(_result(), str(tmp_path))
        with open(path) as fh:
            data = json.load(fh)
        assert data["schema"] == 1
        assert list(data) == sorted(data)

    def test_parallel_fields_round_trip(self, tmp_path):
        result = _result(
            workers=2, cpu_count=8, rounds=1234, sync_stall_s=0.5,
            start_method="fork",
            phase_stats={"rounds": 1234, "phases": {}},
        )
        path = write_result(result, str(tmp_path))
        back = load_results(path)["port_saturation"]
        assert back.rounds == 1234
        assert back.sync_stall_s == 0.5
        assert back.start_method == "fork"
        assert back.phase_stats["rounds"] == 1234

    def test_parallel_fields_default_for_old_baselines(self):
        # a baseline written before these fields existed still loads
        old = {
            "scenario": "port_saturation", "events": 1000,
            "wall_s": 0.01, "events_per_sec": 1e5,
        }
        back = BenchResult.from_dict(old)
        assert back.rounds == 0
        assert back.sync_stall_s == 0.0
        assert back.start_method == ""
        assert back.phase_stats == {}

    def test_fluid_fields_round_trip(self, tmp_path):
        stats = {"flows": 71, "completed": 71, "epochs": 285,
                 "solver_iterations": 300, "threshold_crossings": 12}
        result = _result(mode="hybrid", fluid_stats=stats)
        path = write_result(result, str(tmp_path))
        back = load_results(path)["port_saturation"]
        assert back.mode == "hybrid"
        assert back.fluid_stats == stats

    def test_fluid_fields_default_for_old_baselines(self):
        old = {
            "scenario": "port_saturation", "events": 1000,
            "wall_s": 0.01, "events_per_sec": 1e5,
        }
        back = BenchResult.from_dict(old)
        assert back.mode == "packet"
        assert back.fluid_stats == {}

    def test_describe_surfaces_parallel_context(self):
        result = _result(
            workers=2, cpu_count=8, rounds=1234, sync_stall_s=0.5,
            start_method="fork",
        )
        out = result.describe()
        assert "2 workers on 8 cpus via fork" in out
        assert "1234 rounds" in out
        assert "0.50s sync stall" in out


class TestRegressionGate:
    def test_equal_throughput_is_ok(self):
        (cmp,) = compare_results([_result()], {"port_saturation": _result()})
        assert not cmp.regressed
        assert cmp.ratio == 1.0

    def test_small_loss_within_threshold_is_ok(self):
        new = _result(eps=80_000.0)
        (cmp,) = compare_results([new], {"port_saturation": _result()})
        assert not cmp.regressed  # -20% < 30% threshold

    def test_large_loss_regresses(self):
        new = _result(eps=60_000.0)
        (cmp,) = compare_results([new], {"port_saturation": _result()})
        assert cmp.regressed  # -40% > 30% threshold

    def test_custom_threshold(self):
        new = _result(eps=80_000.0)
        (cmp,) = compare_results(
            [new], {"port_saturation": _result()}, threshold=0.1
        )
        assert cmp.regressed

    def test_missing_baseline_scenario_is_skipped(self):
        assert compare_results([_result(scenario="incast")], {}) == []

    def test_fingerprint_change_is_flagged_not_failed(self):
        new = _result(fingerprint={"completed": 29, "total": 30})
        (cmp,) = compare_results([new], {"port_saturation": _result()})
        assert cmp.fingerprint_changed
        assert not cmp.regressed
        assert "fingerprint changed" in cmp.describe()

    def test_compare_surfaces_parallel_diagnostics(self):
        new = _result(
            scenario="leafspine_slice", eps=60_000.0, workers=2,
            rounds=999, sync_stall_s=1.25, start_method="fork",
        )
        base = _result(scenario="leafspine_slice")
        (cmp,) = compare_results([new], {"leafspine_slice": base})
        assert cmp.workers == 2
        assert cmp.rounds == 999
        out = cmp.describe()
        assert "2w/fork" in out
        assert "999 rounds" in out and "1.25s sync stall" in out

    def test_serial_compare_output_stays_clean(self):
        (cmp,) = compare_results([_result()], {"port_saturation": _result()})
        assert "rounds" not in cmp.describe()


class TestCli:
    def test_list(self, capsys):
        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_mode_override_on_flowless_scenario_is_a_clean_error(
        self, tmp_path, capsys
    ):
        code = bench_main(
            ["-s", "engine_churn", "--mode", "hybrid",
             "--out", str(tmp_path)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error: engine_churn" in err
        assert "no flows to promote" in err

    def test_run_and_self_compare_passes(self, tmp_path, capsys):
        out_dir = str(tmp_path / "a")
        assert bench_main(["-s", "port_saturation", "--out", out_dir]) == 0
        assert (
            bench_main(
                [
                    "-s",
                    "port_saturation",
                    "--out",
                    str(tmp_path / "b"),
                    "--compare",
                    out_dir,
                ]
            )
            == 0
        )

    def test_compare_fails_on_regression(self, tmp_path):
        # fabricate an impossibly fast baseline: the real run must lose
        write_result(_result(eps=1e12), str(tmp_path))
        code = bench_main(
            [
                "-s",
                "port_saturation",
                "--out",
                str(tmp_path / "out"),
                "--compare",
                str(tmp_path),
            ]
        )
        assert code == 1

    def test_compare_missing_baseline_errors(self, tmp_path):
        code = bench_main(
            [
                "-s",
                "port_saturation",
                "--out",
                str(tmp_path / "out"),
                "--compare",
                str(tmp_path / "nope"),
            ]
        )
        assert code == 2

    def test_compare_unparseable_baseline_errors(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_port_saturation.json"
        bad.write_text("{not json")
        code = bench_main(
            [
                "-s",
                "port_saturation",
                "--out",
                str(tmp_path / "out"),
                "--compare",
                str(bad),
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # exactly one diagnostic line
        assert "BENCH_port_saturation.json" in err

    def test_equeue_flag_is_recorded_in_the_result_json(self, tmp_path):
        out_dir = tmp_path / "out"
        assert (
            bench_main(
                [
                    "-s",
                    "port_saturation",
                    "--out",
                    str(out_dir),
                    "--equeue",
                    "ladder",
                ]
            )
            == 0
        )
        payload = json.loads(
            (out_dir / "BENCH_port_saturation.json").read_text()
        )
        assert _backend_name(payload["equeue"]) == "ladder"
        assert isinstance(payload["equeue_stats"], dict)

    def test_spans_flag_writes_timeline_and_phase_stats(self, tmp_path):
        spans_dir = tmp_path / "spans"
        out_dir = tmp_path / "out"
        assert (
            bench_main(
                [
                    "-s",
                    "port_saturation",
                    "--out",
                    str(out_dir),
                    "--spans",
                    str(spans_dir),
                ]
            )
            == 0
        )
        jsonl = spans_dir / "SPANS_port_saturation.jsonl"
        trace = spans_dir / "TRACE_port_saturation.json"
        assert jsonl.exists() and trace.exists()
        doc = json.loads(trace.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        payload = json.loads(
            (out_dir / "BENCH_port_saturation.json").read_text()
        )
        # a serial scenario has no round phases to attribute
        assert payload["phase_stats"] == {}
        assert payload["rounds"] == 0

    def test_compare_json_artifact_is_written(self, tmp_path):
        base_dir = str(tmp_path / "base")
        assert bench_main(["-s", "port_saturation", "--out", base_dir]) == 0
        artifact = tmp_path / "compare.json"
        assert (
            bench_main(
                [
                    "-s",
                    "port_saturation",
                    "--out",
                    str(tmp_path / "out"),
                    "--compare",
                    base_dir,
                    # the test pins the artifact shape, not machine speed:
                    # a huge threshold keeps back-to-back noise from failing
                    "--threshold",
                    "0.99",
                    "--compare-json",
                    str(artifact),
                ]
            )
            == 0
        )
        payload = json.loads(artifact.read_text())
        assert _backend_name(payload["equeue"]) == "heap"
        assert not payload["regressed"]
        assert payload["missing_baselines"] == []
        (row,) = payload["comparisons"]
        assert row["scenario"] == "port_saturation"
        assert {"baseline_eps", "new_eps", "ratio"} <= set(row)
        assert not row["fingerprint_changed"]
