"""Tracing is an observer: byte-identical traces, unchanged results.

Also home of the golden-digest guards: SHA-256 pins of the full JSONL
trace and the FCT vector for fixed seeds, captured on the pre-hot-path
core.  Any change that perturbs simulation behaviour — event ordering,
RNG consumption, marking, retransmission timing — flips a digest; pure
performance work must keep them all green.
"""

import dataclasses
import hashlib
import io
import json

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.harness.sweep import SweepResult, SweepStats, _result_from_payload
from repro.metrics.fct import FctSummary
from repro.obs import Tracer

_CFG = dict(
    scheme="tcn", scheduler="dwrr", workload="cache",
    load=0.5, n_flows=15, seed=4,
)


def _traced_run():
    tracer = Tracer()
    result = run_experiment(ExperimentConfig(**_CFG), tracer=tracer)
    return result, tracer


def _jsonl(tracer: Tracer) -> str:
    buf = io.StringIO()
    tracer.export_jsonl(buf)
    return buf.getvalue()


class TestTraceDeterminism:
    def test_same_seed_runs_give_byte_identical_traces(self):
        _, t1 = _traced_run()
        _, t2 = _traced_run()
        blob1, blob2 = _jsonl(t1), _jsonl(t2)
        assert blob1 and blob1 == blob2

    def test_different_seed_changes_the_trace(self):
        _, t1 = _traced_run()
        tracer = Tracer()
        run_experiment(
            ExperimentConfig(**{**_CFG, "seed": 5}), tracer=tracer
        )
        assert _jsonl(t1) != _jsonl(tracer)


class TestTracingIsPureObservation:
    @pytest.fixture(scope="class")
    def pair(self):
        traced, tracer = _traced_run()
        untraced = run_experiment(ExperimentConfig(**_CFG))
        return traced, untraced, tracer

    def test_summary_and_counters_identical(self, pair):
        traced, untraced, _ = pair
        for fld in FctSummary.__slots__:
            assert getattr(traced.summary, fld) == getattr(untraced.summary, fld)
        for fld in (
            "completed", "total", "timeouts", "timeouts_small",
            "drops", "marks", "sim_ns", "events",
        ):
            assert getattr(traced, fld) == getattr(untraced, fld), fld

    def test_flow_fcts_identical(self, pair):
        traced, untraced, _ = pair
        assert [f.fct_ns for f in traced.flows] == [
            f.fct_ns for f in untraced.flows
        ]

    def test_metrics_identical_modulo_trace_derived(self, pair):
        traced, untraced, _ = pair
        stripped = {
            k: v for k, v in traced.metrics.items()
            if not k.startswith("trace.")
        }
        assert stripped == untraced.metrics
        # the trace-only sojourn histogram counts every dequeue
        assert traced.metrics["trace.sojourn_ns"]["count"] > 0

    def test_trace_marks_equal_result_marks(self, pair):
        traced, _, tracer = pair
        marks = sum(1 for ev in tracer.events if ev[0] == "mark")
        assert marks == traced.marks
        drops = sum(1 for ev in tracer.events if ev[0] == "drop")
        assert drops == traced.drops

    def test_deterministic_profile_fields(self, pair):
        traced, untraced, _ = pair
        assert traced.profile["events"] == untraced.profile["events"]
        assert traced.profile["heap_hwm"] == untraced.profile["heap_hwm"]


#: digests captured from the engine as of the seed revision (pre hot-path
#: rework); the rework was required to reproduce them bit-for-bit.
#: To regenerate after an *intentional* behaviour change: run the config
#: with a Tracer, sha256 the exported JSONL and the json.dumps of the
#: [flow.fct_ns...] list, and update the counters alongside.
_GOLDEN = {
    "star_tcn_dwrr": {
        "config": dict(
            scheme="tcn", scheduler="dwrr", workload="cache",
            load=0.5, n_flows=15, seed=4,
        ),
        "trace_sha256": (
            "529ebbcbec50ccb9b9e7740044ad43126f458e12999863d03c6b98d7ea53b74a"
        ),
        "trace_events": 511,
        "fct_sha256": (
            "c1e4bb33aa843bb0f2d3c340d9a838f4094a8d1bef5f9780510a64df830a8920"
        ),
        "completed": 15,
        "total": 15,
        "timeouts": 0,
        "drops": 0,
        "marks": 0,
        "sim_ns": 50_000_000,
        "avg_all_ns": 235_301.6,
    },
    "star_red_spwfq": {
        "config": dict(
            scheme="red_std", scheduler="sp_wfq", workload="websearch",
            load=0.7, n_flows=25, seed=7,
        ),
        "trace_sha256": (
            "d4ee7ad6ad8448f9b03dbc2630570868e2701ddfbdfcb50790f7eb396f3ff44b"
        ),
        "trace_events": 17444,
        "fct_sha256": (
            "c4b911f1a412d35c0b56a600348b5f148d90e7ff8288342103b098ba3435d94c"
        ),
        "completed": 25,
        "total": 25,
        "timeouts": 0,
        "drops": 0,
        "marks": 0,
        "sim_ns": 400_000_000,
        "avg_all_ns": 2_253_811.2,
    },
}


class TestGoldenDigests:
    """Bit-exact pins of whole runs across two schemes and schedulers."""

    @pytest.fixture(scope="class")
    def runs(self):
        out = {}
        for name, golden in _GOLDEN.items():
            tracer = Tracer()
            result = run_experiment(
                ExperimentConfig(**golden["config"]), tracer=tracer
            )
            out[name] = (result, _jsonl(tracer))
        return out

    @pytest.mark.parametrize("name", sorted(_GOLDEN))
    def test_trace_bytes_match_golden(self, runs, name):
        golden = _GOLDEN[name]
        _, blob = runs[name]
        assert len(blob.splitlines()) == golden["trace_events"]
        assert hashlib.sha256(blob.encode()).hexdigest() == (
            golden["trace_sha256"]
        )

    @pytest.mark.parametrize("name", sorted(_GOLDEN))
    def test_fct_vector_matches_golden(self, runs, name):
        golden = _GOLDEN[name]
        result, _ = runs[name]
        fcts = [f.fct_ns for f in result.flows]
        assert hashlib.sha256(json.dumps(fcts).encode()).hexdigest() == (
            golden["fct_sha256"]
        )
        assert result.summary.avg_all_ns == golden["avg_all_ns"]

    @pytest.mark.parametrize("name", sorted(_GOLDEN))
    def test_counters_match_golden(self, runs, name):
        golden = _GOLDEN[name]
        result, _ = runs[name]
        for fld in (
            "completed", "total", "timeouts", "drops", "marks", "sim_ns",
        ):
            assert getattr(result, fld) == golden[fld], fld


class TestSweepObservabilityFields:
    def test_payload_round_trips_metrics_and_heap(self):
        result = run_experiment(ExperimentConfig(**_CFG))
        sr = SweepResult(
            config=result.config,
            summary=result.summary,
            completed=result.completed,
            total=result.total,
            metrics=result.metrics,
            heap_hwm=result.profile["heap_hwm"],
        )
        payload = sr.payload()
        back = _result_from_payload(
            result.config, payload, wall_s=0.0, from_cache=True
        )
        assert back.metrics == result.metrics
        assert back.heap_hwm == result.profile["heap_hwm"] > 0

    def test_old_payloads_without_new_fields_still_load(self):
        cfg = ExperimentConfig(**_CFG)
        payload = {
            "summary": None, "completed": 0, "total": 0, "timeouts": 0,
            "timeouts_small": 0, "drops": 0, "marks": 0, "sim_ns": 0,
            "flow_stats": [],
        }
        back = _result_from_payload(cfg, payload, wall_s=0.0, from_cache=True)
        assert back.metrics == {} and back.heap_hwm == 0

    def test_sweep_stats_json_round_trip(self):
        stats = SweepStats(
            total=4, cache_hits=1, cache_misses=3, errors=0,
            wall_s=1.0, sim_events=1000, run_wall_s=2.0,
        )
        back = SweepStats(**dataclasses.asdict(stats))
        assert back == stats
        assert back.events_per_sec == 500.0
        assert SweepStats().events_per_sec == 0.0
