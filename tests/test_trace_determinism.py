"""Tracing is an observer: byte-identical traces, unchanged results."""

import dataclasses
import io

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.harness.sweep import SweepResult, SweepStats, _result_from_payload
from repro.metrics.fct import FctSummary
from repro.obs import Tracer

_CFG = dict(
    scheme="tcn", scheduler="dwrr", workload="cache",
    load=0.5, n_flows=15, seed=4,
)


def _traced_run():
    tracer = Tracer()
    result = run_experiment(ExperimentConfig(**_CFG), tracer=tracer)
    return result, tracer


def _jsonl(tracer: Tracer) -> str:
    buf = io.StringIO()
    tracer.export_jsonl(buf)
    return buf.getvalue()


class TestTraceDeterminism:
    def test_same_seed_runs_give_byte_identical_traces(self):
        _, t1 = _traced_run()
        _, t2 = _traced_run()
        blob1, blob2 = _jsonl(t1), _jsonl(t2)
        assert blob1 and blob1 == blob2

    def test_different_seed_changes_the_trace(self):
        _, t1 = _traced_run()
        tracer = Tracer()
        run_experiment(
            ExperimentConfig(**{**_CFG, "seed": 5}), tracer=tracer
        )
        assert _jsonl(t1) != _jsonl(tracer)


class TestTracingIsPureObservation:
    @pytest.fixture(scope="class")
    def pair(self):
        traced, tracer = _traced_run()
        untraced = run_experiment(ExperimentConfig(**_CFG))
        return traced, untraced, tracer

    def test_summary_and_counters_identical(self, pair):
        traced, untraced, _ = pair
        for fld in FctSummary.__slots__:
            assert getattr(traced.summary, fld) == getattr(untraced.summary, fld)
        for fld in (
            "completed", "total", "timeouts", "timeouts_small",
            "drops", "marks", "sim_ns", "events",
        ):
            assert getattr(traced, fld) == getattr(untraced, fld), fld

    def test_flow_fcts_identical(self, pair):
        traced, untraced, _ = pair
        assert [f.fct_ns for f in traced.flows] == [
            f.fct_ns for f in untraced.flows
        ]

    def test_metrics_identical_modulo_trace_derived(self, pair):
        traced, untraced, _ = pair
        stripped = {
            k: v for k, v in traced.metrics.items()
            if not k.startswith("trace.")
        }
        assert stripped == untraced.metrics
        # the trace-only sojourn histogram counts every dequeue
        assert traced.metrics["trace.sojourn_ns"]["count"] > 0

    def test_trace_marks_equal_result_marks(self, pair):
        traced, _, tracer = pair
        marks = sum(1 for ev in tracer.events if ev[0] == "mark")
        assert marks == traced.marks
        drops = sum(1 for ev in tracer.events if ev[0] == "drop")
        assert drops == traced.drops

    def test_deterministic_profile_fields(self, pair):
        traced, untraced, _ = pair
        assert traced.profile["events"] == untraced.profile["events"]
        assert traced.profile["heap_hwm"] == untraced.profile["heap_hwm"]


class TestSweepObservabilityFields:
    def test_payload_round_trips_metrics_and_heap(self):
        result = run_experiment(ExperimentConfig(**_CFG))
        sr = SweepResult(
            config=result.config,
            summary=result.summary,
            completed=result.completed,
            total=result.total,
            metrics=result.metrics,
            heap_hwm=result.profile["heap_hwm"],
        )
        payload = sr.payload()
        back = _result_from_payload(
            result.config, payload, wall_s=0.0, from_cache=True
        )
        assert back.metrics == result.metrics
        assert back.heap_hwm == result.profile["heap_hwm"] > 0

    def test_old_payloads_without_new_fields_still_load(self):
        cfg = ExperimentConfig(**_CFG)
        payload = {
            "summary": None, "completed": 0, "total": 0, "timeouts": 0,
            "timeouts_small": 0, "drops": 0, "marks": 0, "sim_ns": 0,
            "flow_stats": [],
        }
        back = _result_from_payload(cfg, payload, wall_s=0.0, from_cache=True)
        assert back.metrics == {} and back.heap_hwm == 0

    def test_sweep_stats_json_round_trip(self):
        stats = SweepStats(
            total=4, cache_hits=1, cache_misses=3, errors=0,
            wall_s=1.0, sim_events=1000, run_wall_s=2.0,
        )
        back = SweepStats(**dataclasses.asdict(stats))
        assert back == stats
        assert back.events_per_sec == 500.0
        assert SweepStats().events_per_sec == 0.0
