"""PIAS tagging, the ping application, host demux, and classification."""

import pytest

from repro.apps.pinger import Pinger
from repro.net.classifier import DscpClassifier
from repro.net.host import Host
from repro.net.link import Link
from repro.net.nic import make_nic
from repro.net.packet import Packet, PacketKind
from repro.pias.tagger import PiasTagger
from repro.sim.engine import Simulator
from repro.transport.flow import Flow
from repro.units import GBPS, KB, MB, MSEC, MSS, USEC
from tests.helpers import data_pkt


class TestPiasTagger:
    def test_first_100kb_high_priority(self):
        tagger = PiasTagger()
        flow = Flow(1, 0, 1, 1 * MB, service=2)
        boundary = (100 * KB) // MSS  # segments fully below the threshold
        for seq in range(boundary):
            assert tagger(flow, seq) == 0

    def test_rest_goes_to_service_queue(self):
        tagger = PiasTagger()
        flow = Flow(1, 0, 1, 1 * MB, service=2)
        last = flow.npkts - 1
        assert tagger(flow, last) == 1 + 2  # offset 1 + service 2

    def test_boundary_is_bytes_sent_before_segment(self):
        tagger = PiasTagger(threshold_bytes=2 * MSS)
        flow = Flow(1, 0, 1, 1 * MB, service=0)
        assert tagger(flow, 0) == 0
        assert tagger(flow, 1) == 0
        assert tagger(flow, 2) == 1  # 2*MSS bytes already sent: demoted

    def test_small_flow_never_demoted(self):
        tagger = PiasTagger()
        flow = Flow(1, 0, 1, 50 * KB, service=3)
        assert all(tagger(flow, s) == 0 for s in range(flow.npkts))

    def test_custom_offsets(self):
        tagger = PiasTagger(high_dscp=7, service_dscp_offset=2)
        flow = Flow(1, 0, 1, 1 * MB, service=1)
        assert tagger(flow, 0) == 7
        assert tagger(flow, flow.npkts - 1) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            PiasTagger(threshold_bytes=-1)


class TestDscpClassifier:
    def test_identity_clamped(self):
        cls = DscpClassifier(4)
        assert cls(data_pkt(dscp=2)) == 2
        assert cls(data_pkt(dscp=9)) == 3

    def test_explicit_table(self):
        cls = DscpClassifier(2, table={0: 0, 5: 1})
        assert cls(data_pkt(dscp=5)) == 1
        assert cls(data_pkt(dscp=42)) == 1  # unknown -> last queue

    def test_table_validation(self):
        with pytest.raises(ValueError):
            DscpClassifier(2, table={0: 5})
        with pytest.raises(ValueError):
            DscpClassifier(0)


class TestHostDemux:
    def _pair(self):
        sim = Simulator()
        nic_a = make_nic(sim, GBPS, link=None)
        nic_b = make_nic(sim, GBPS, link=None)
        a, b = Host(sim, 0, nic_a), Host(sim, 1, nic_b)
        nic_a.link = Link(b, 10 * USEC)
        nic_b.link = Link(a, 10 * USEC)
        return sim, a, b

    def test_probe_echoed(self):
        sim, a, b = self._pair()
        got = []
        a.register_probe_handler(9, got.append)
        probe = Packet(9, 0, 1, PacketKind.PROBE, dscp=3, ts=sim.now)
        a.send(probe)
        sim.run()
        assert len(got) == 1
        assert got[0].kind == PacketKind.PROBE_REPLY
        assert got[0].dscp == 3

    def test_unknown_flow_data_ignored(self):
        sim, a, b = self._pair()
        b.receive(data_pkt(flow_id=404))  # no receiver registered: no crash

    def test_unregister_flow(self):
        sim, a, b = self._pair()

        class _Stub:
            def on_data(self, pkt):
                raise AssertionError("should be unregistered")

        b.register_receiver(7, _Stub())
        b.unregister_flow(7)
        b.receive(data_pkt(flow_id=7))  # must not raise


class TestPinger:
    def test_measures_base_rtt(self):
        sim = Simulator()
        nic_a = make_nic(sim, GBPS, link=None)
        nic_b = make_nic(sim, GBPS, link=None)
        a, b = Host(sim, 0, nic_a), Host(sim, 1, nic_b)
        nic_a.link = Link(b, 50 * USEC)
        nic_b.link = Link(a, 50 * USEC)
        ping = Pinger(sim, a, 1, flow_id=1, interval_ns=1 * MSEC)
        ping.start()
        sim.run(until=10 * MSEC)
        assert len(ping.rtts_ns) == 10
        # 100 us propagation + 2 probe serializations (~1 us)
        assert all(100 * USEC <= r <= 110 * USEC for r in ping.rtts_ns)

    def test_stop_stops(self):
        sim = Simulator()
        nic = make_nic(sim, GBPS, link=None)
        a = Host(sim, 0, nic)
        nic.link = Link(a, 0)  # loop to self; irrelevant
        ping = Pinger(sim, a, 0, flow_id=1, interval_ns=1 * MSEC)
        ping.start()
        sim.run(until=3 * MSEC)
        ping.stop()
        n = len(ping.rtts_ns)
        sim.run(until=10 * MSEC)
        # no new probes are sent; at most one in-flight reply may land
        assert len(ping.rtts_ns) <= n + 1

    def test_validation(self):
        sim = Simulator()
        nic = make_nic(sim, GBPS, link=None)
        a = Host(sim, 0, nic)
        with pytest.raises(ValueError):
            Pinger(sim, a, 1, flow_id=1, interval_ns=0)
