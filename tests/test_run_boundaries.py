"""Pin ``Simulator.run``'s boundary contract on every equeue backend.

The partitioned engine (repro.sim.parallel) leans on these exact
semantics — its barrier protocol runs partitions to shared horizons with
``run(until=...)`` and reasons about which events executed — so the
contract documented on ``Simulator.run`` is pinned here for heap, ladder
and wheel alike:

* ``until`` is inclusive; the first strictly-later event stays queued;
* when nothing remains at or before ``until``, the clock advances to
  ``until`` exactly (idempotently);
* ``max_events`` counts executed events only and stops *after* the
  budget-exhausting event, leaving the clock on that event's timestamp.

Plus the GC regression: ``run`` disables gc for the hot loop and must
restore it even when a callback raises.
"""

import gc

import pytest

from repro.sim.engine import Simulator
from repro.sim.equeue import BACKENDS

pytestmark = pytest.mark.parametrize("equeue", sorted(BACKENDS))


def _log_cb(log, label):
    def cb():
        log.append(label)

    return cb


class TestUntilBoundary:
    def test_event_exactly_at_until_executes(self, equeue):
        sim = Simulator(equeue=equeue)
        log = []
        sim.schedule(100, _log_cb(log, "at"))
        sim.schedule(101, _log_cb(log, "after"))
        executed = sim.run(until=100)
        assert executed == 1
        assert log == ["at"]
        assert sim.now == 100

    def test_event_after_until_stays_queued(self, equeue):
        sim = Simulator(equeue=equeue)
        log = []
        sim.schedule(101, _log_cb(log, "after"))
        assert sim.run(until=100) == 0
        assert log == []
        assert not sim.idle
        assert sim.peek_time() == 101
        # the event is intact and fires on the next call
        assert sim.run(until=101) == 1
        assert log == ["after"]

    def test_clock_advances_to_until_when_drained(self, equeue):
        sim = Simulator(equeue=equeue)
        sim.schedule(10, lambda: None)
        sim.run(until=500)
        assert sim.now == 500

    def test_clock_advance_is_idempotent(self, equeue):
        """Chunked driving: an empty chunk still parks now on the bound."""
        sim = Simulator(equeue=equeue)
        sim.schedule(10, lambda: None)
        for bound in (100, 200, 300):
            sim.run(until=bound)
            assert sim.now == bound
        assert sim.events_executed == 1

    def test_until_in_the_past_is_a_noop(self, equeue):
        sim = Simulator(equeue=equeue)
        sim.schedule(10, lambda: None)
        sim.schedule(300, lambda: None)
        sim.run(until=200)
        assert sim.now == 200
        assert sim.run(until=100) == 0
        assert sim.now == 200  # the clock never moves backward

    def test_until_does_not_advance_past_pending_event(self, equeue):
        """The tail advance only fires when nothing remains <= until."""
        sim = Simulator(equeue=equeue)
        sim.schedule(50, lambda: None)
        sim.schedule(150, lambda: None)
        sim.run(until=100)
        assert sim.now == 100
        assert sim.peek_time() == 150

    def test_same_timestamp_events_all_run_at_until(self, equeue):
        sim = Simulator(equeue=equeue)
        log = []
        for i in range(5):
            sim.schedule(100, _log_cb(log, i))
        assert sim.run(until=100) == 5
        assert log == [0, 1, 2, 3, 4]  # schedule order preserved


class TestMaxEvents:
    def test_budget_counts_executed_only(self, equeue):
        sim = Simulator(equeue=equeue)
        fired = []
        for i in range(10):
            sim.schedule(10 * (i + 1), _log_cb(fired, i))
        assert sim.run(max_events=3) == 3
        assert fired == [0, 1, 2]
        # clock rests on the budget-exhausting event's timestamp
        assert sim.now == 30
        assert sim.peek_time() == 40

    def test_budget_with_until_stops_at_whichever_first(self, equeue):
        sim = Simulator(equeue=equeue)
        for i in range(10):
            sim.schedule(10 * (i + 1), lambda: None)
        # budget binds before the time bound ...
        assert sim.run(until=1000, max_events=2) == 2
        assert sim.now == 20
        # ... and the time bound binds before the budget
        assert sim.run(until=50, max_events=100) == 3
        assert sim.now == 50

    def test_cancelled_events_do_not_consume_budget(self, equeue):
        sim = Simulator(equeue=equeue)
        fired = []
        handles = [sim.schedule(10 * (i + 1), _log_cb(fired, i)) for i in range(6)]
        for handle in handles[:3]:
            sim.cancel(handle)
        assert sim.run(max_events=3) == 3
        assert fired == [3, 4, 5]

    def test_resume_after_budget_is_seamless(self, equeue):
        """Driving by repeated small budgets executes the same schedule."""
        sim_a = Simulator(equeue=equeue)
        sim_b = Simulator(equeue=equeue)
        log_a, log_b = [], []
        for sim, log in ((sim_a, log_a), (sim_b, log_b)):
            for i in range(20):
                sim.schedule(7 * (i % 5) + i, _log_cb(log, i))
        total_a = sim_a.run()
        total_b = 0
        while True:
            n = sim_b.run(max_events=3)
            total_b += n
            if n == 0:
                break
        assert total_a == total_b == 20
        assert log_a == log_b


class TestGcRestoration:
    def test_gc_reenabled_after_clean_run(self, equeue):
        assert gc.isenabled()
        sim = Simulator(equeue=equeue)
        sim.schedule(1, lambda: None)
        sim.run()
        assert gc.isenabled()

    def test_gc_reenabled_when_callback_raises(self, equeue):
        """Regression: the hot loop disables gc; a raising callback must
        not leak the disabled state into the caller's process."""
        assert gc.isenabled()
        sim = Simulator(equeue=equeue)

        def boom():
            raise RuntimeError("injected")

        sim.schedule(1, boom)
        with pytest.raises(RuntimeError, match="injected"):
            sim.run()
        assert gc.isenabled()

    def test_gc_state_preserved_if_caller_disabled_it(self, equeue):
        """run() restores the caller's state, whatever it was."""
        sim = Simulator(equeue=equeue)
        sim.schedule(1, lambda: None)
        gc.disable()
        try:
            sim.run()
            assert not gc.isenabled()
        finally:
            gc.enable()
