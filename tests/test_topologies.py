"""Star and leaf-spine topology construction and routing."""

import pytest

from repro.core.tcn import Tcn
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator
from repro.topo.leafspine import LeafSpineTopology
from repro.topo.star import StarTopology
from repro.transport.dctcp import DctcpSender
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.units import GBPS, KB, SEC, USEC


def _star(n=4):
    sim = Simulator()
    topo = StarTopology(
        sim, n, GBPS,
        sched_factory=FifoScheduler,
        aqm_factory=lambda: Tcn(250 * USEC),
        link_delay_ns=62_500,
    )
    return sim, topo


def _leafspine(n_leaf=2, n_spine=2, hpl=2):
    sim = Simulator()
    topo = LeafSpineTopology(
        sim, n_leaf, n_spine, hpl,
        sched_factory=FifoScheduler,
        aqm_factory=lambda: Tcn(78 * USEC),
        edge_rate_bps=10 * GBPS,
        host_link_delay_ns=20_000,
        fabric_link_delay_ns=650,
    )
    return sim, topo


class TestStar:
    def test_structure(self):
        sim, topo = _star(5)
        assert len(topo.hosts) == 5
        assert len(topo.switch.ports) == 5
        assert topo.base_rtt_ns == 250 * USEC

    def test_end_to_end_transfer(self):
        sim, topo = _star()
        flow = Flow(1, 1, 3, 100 * KB)
        Receiver(sim, topo.hosts[3], flow)
        s = DctcpSender(sim, topo.hosts[1], flow)
        sim.schedule(0, s.start)
        sim.run(until=1 * SEC)
        assert flow.completed
        assert flow.fct_ns > topo.base_rtt_ns

    def test_each_port_gets_own_scheduler_and_aqm(self):
        sim, topo = _star()
        scheds = {id(p.scheduler) for p in topo.switch.ports}
        aqms = {id(p.aqm) for p in topo.switch.ports}
        assert len(scheds) == 4 and len(aqms) == 4

    def test_min_hosts(self):
        with pytest.raises(ValueError):
            _star(1)


class TestLeafSpine:
    def test_structure(self):
        sim, topo = _leafspine(3, 2, 4)
        assert topo.n_hosts == 12
        assert len(topo.leaves) == 3
        assert len(topo.spines) == 2
        # each leaf: 4 host ports + 2 uplinks; each spine: 3 downlinks
        assert all(len(l.ports) == 6 for l in topo.leaves)
        assert all(len(s.ports) == 3 for s in topo.spines)

    def test_intra_leaf_transfer(self):
        sim, topo = _leafspine()
        flow = Flow(1, 0, 1, 50 * KB)  # same leaf
        Receiver(sim, topo.hosts[1], flow)
        s = DctcpSender(sim, topo.hosts[0], flow)
        sim.schedule(0, s.start)
        sim.run(until=1 * SEC)
        assert flow.completed

    def test_cross_leaf_transfer(self):
        sim, topo = _leafspine()
        flow = Flow(1, 0, 3, 500 * KB)  # leaf 0 -> leaf 1
        Receiver(sim, topo.hosts[3], flow)
        s = DctcpSender(sim, topo.hosts[0], flow)
        sim.schedule(0, s.start)
        sim.run(until=1 * SEC)
        assert flow.completed

    def test_ecmp_is_per_flow_stable(self):
        sim, topo = _leafspine(2, 4, 2)
        assert all(
            topo.ecmp_spine(fid) == topo.ecmp_spine(fid) for fid in range(100)
        )

    def test_ecmp_spreads_flows(self):
        sim, topo = _leafspine(2, 4, 2)
        hits = [0] * 4
        for fid in range(400):
            hits[topo.ecmp_spine(fid)] += 1
        assert min(hits) > 50

    def test_many_flows_all_complete(self):
        sim, topo = _leafspine(2, 2, 2)
        flows = []
        for i in range(12):
            src, dst = i % 4, (i + 1 + i // 4) % 4
            if src == dst:
                dst = (dst + 1) % 4
            f = Flow(i + 1, src, dst, 200 * KB)
            flows.append(f)
            Receiver(sim, topo.hosts[dst], f)
            s = DctcpSender(sim, topo.hosts[src], f)
            sim.schedule(i * 1000, s.start)
        sim.run(until=2 * SEC)
        assert all(f.completed for f in flows)

    def test_base_rtt(self):
        sim, topo = _leafspine()
        assert topo.base_rtt_ns == 4 * 20_000 + 8 * 650

    def test_validation(self):
        with pytest.raises(ValueError):
            _leafspine(0, 1, 1)
