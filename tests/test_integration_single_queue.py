"""End-to-end single-queue behaviour: ECN keeps queues short and links full,
and enqueue/dequeue/sojourn marking relate as §4.3 describes (Fig. 3)."""

import pytest

from repro.aqm.dequeue_red import DequeueRed
from repro.aqm.perqueue import PerQueueRed
from repro.core.tcn import Tcn
from repro.metrics.timeseries import OccupancySampler
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator
from repro.topo.star import StarTopology
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.transport.tcp import EcnStarSender
from repro.units import GBPS, KB, MB, MSEC, SEC, USEC


def _run(aqm_factory, buffer_bytes=4 * MB, n_flows=8, until=20 * MSEC):
    """The Fig. 3 setup: 9 hosts at 10G, 8 synchronized ECN* flows."""
    sim = Simulator()
    topo = StarTopology(
        sim, 9, 10 * GBPS,
        sched_factory=FifoScheduler,
        aqm_factory=aqm_factory,
        buffer_bytes=buffer_bytes,
        link_delay_ns=25_000,  # base RTT 100 us
    )
    sampler = OccupancySampler(topo.port_to(0))
    flows = []
    for i in range(n_flows):
        f = Flow(i + 1, i + 1, 0, 500 * MB)
        flows.append(f)
        Receiver(sim, topo.hosts[0], f)
        s = EcnStarSender(sim, topo.hosts[i + 1], f, init_cwnd=10)
        sim.schedule(0, s.start)
    sim.run(until=until)
    port = topo.port_to(0)
    return sampler, port, flows


class TestFig3BufferOccupancy:
    """Peak ~3xBDP for enqueue marking and TCN, ~2xBDP for dequeue marking;
    all settle into the 0..K band (K = 125 KB at 10G x 100 us)."""

    BDP = 125 * KB

    def test_enqueue_red_peak_three_bdp(self):
        sampler, _, _ = _run(lambda: PerQueueRed(125 * KB))
        assert 2.5 * self.BDP <= sampler.peak_bytes <= 3.5 * self.BDP

    def test_tcn_peak_three_bdp(self):
        sampler, _, _ = _run(lambda: Tcn(100 * USEC))
        assert 2.5 * self.BDP <= sampler.peak_bytes <= 3.5 * self.BDP

    def test_dequeue_red_peak_two_bdp(self):
        sampler, _, _ = _run(lambda: DequeueRed(125 * KB))
        assert 1.6 * self.BDP <= sampler.peak_bytes <= 2.4 * self.BDP

    def test_dequeue_red_peaks_below_enqueue_red(self):
        deq, _, _ = _run(lambda: DequeueRed(125 * KB))
        enq, _, _ = _run(lambda: PerQueueRed(125 * KB))
        assert deq.peak_bytes < enq.peak_bytes

    @pytest.mark.parametrize(
        "aqm",
        [lambda: PerQueueRed(125 * KB),
         lambda: DequeueRed(125 * KB),
         lambda: Tcn(100 * USEC)],
    )
    def test_steady_state_bounded(self, aqm):
        """After slow start all schemes oscillate around/below K."""
        sampler, _, _ = _run(aqm)
        steady_max = sampler.max_in_window(10 * MSEC, 20 * MSEC)
        assert steady_max <= 1.3 * self.BDP

    def test_tcn_matches_enqueue_red_at_fixed_capacity(self):
        """§4.3: with a single queue the capacity is fixed, so a 100 us
        sojourn threshold and a 125 KB length threshold mark equivalently
        — mean occupancies must be close."""
        tcn, _, _ = _run(lambda: Tcn(100 * USEC))
        red, _, _ = _run(lambda: PerQueueRed(125 * KB))
        m1 = tcn.mean_in_window(10 * MSEC, 20 * MSEC)
        m2 = red.mean_in_window(10 * MSEC, 20 * MSEC)
        assert m1 == pytest.approx(m2, rel=0.25)


class TestThroughputAndLatency:
    def test_ecn_keeps_link_utilized(self):
        """The ECN promise: short queues without losing throughput."""
        _, port, _ = _run(lambda: Tcn(100 * USEC), until=50 * MSEC)
        # bytes transmitted over 50 ms at 10 Gbps
        expected = 10 * GBPS * 50 * MSEC // (8 * SEC)
        assert port.stats.tx_bytes >= 0.92 * expected

    def test_no_drops_with_big_buffer(self):
        _, port, _ = _run(lambda: Tcn(100 * USEC))
        assert port.stats.dropped_pkts == 0

    def test_marks_actually_happen(self):
        _, port, _ = _run(lambda: Tcn(100 * USEC))
        assert port.stats.marked_pkts > 0

    def test_fair_share_among_synchronized_flows(self):
        """Eight identical ECN* flows through one TCN queue converge to
        similar long-run shares (no flow starves under marking)."""
        from repro.metrics.timeseries import GoodputTracker
        from repro.transport.receiver import Receiver as _R

        sim = Simulator()
        topo = StarTopology(
            sim, 9, 10 * GBPS,
            sched_factory=FifoScheduler,
            aqm_factory=lambda: Tcn(100 * USEC),
            buffer_bytes=4 * MB,
            link_delay_ns=25_000,
        )
        tracker = GoodputTracker()
        for i in range(8):
            f = Flow(i + 1, i + 1, 0, 500 * MB)
            _R(sim, topo.hosts[0], f,
               on_bytes=lambda fl, b, t: tracker.record(fl.id, b, t))
            s = EcnStarSender(sim, topo.hosts[i + 1], f, init_cwnd=10)
            sim.schedule(0, s.start)
        sim.run(until=100 * MSEC)
        rates = [
            tracker.goodput_bps(i + 1, 20 * MSEC, 100 * MSEC) for i in range(8)
        ]
        assert min(rates) > 0.4 * max(rates)
        assert sum(rates) > 0.85 * 10 * GBPS
