"""EgressPort: admission, serialization timing, marking plumbing, delivery."""

from repro.aqm.base import Aqm
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.port import EgressPort
from repro.sim.engine import Simulator
from repro.units import GBPS, KB, USEC
from tests.helpers import data_pkt, make_port


class _Sink:
    def __init__(self):
        self.received = []

    def receive(self, pkt: Packet) -> None:
        self.received.append(pkt)


class _MarkAll(Aqm):
    def on_dequeue(self, port, queue, pkt, now):
        return True


class _MarkAtEnqueue(Aqm):
    def on_enqueue(self, port, queue, pkt, now):
        return True


class TestAdmission:
    def test_drop_when_buffer_full(self):
        sim = Simulator()
        port = make_port(sim, buffer_bytes=3000)
        for i in range(4):
            port.receive(data_pkt(seq=i))
        # one packet is in flight (serializing, not buffered); the buffer
        # holds two more; the fourth arrival must be dropped
        assert port.stats.dropped_pkts == 1
        assert port.stats.rx_pkts == 4

    def test_occupancy_tracks_buffered_bytes(self):
        sim = Simulator()
        port = make_port(sim, buffer_bytes=100 * KB)
        for i in range(5):
            port.receive(data_pkt(seq=i))
        # first packet dequeued immediately for transmission
        assert port.occupancy == 4 * 1500
        sim.run()
        assert port.occupancy == 0

    def test_small_packet_fits_where_large_does_not(self):
        sim = Simulator()
        port = make_port(sim, buffer_bytes=2000)
        port.receive(data_pkt(seq=0))           # in flight
        port.receive(data_pkt(seq=1))           # buffered (1500)
        port.receive(data_pkt(seq=2))           # 3000 > 2000: dropped
        port.receive(data_pkt(seq=3, payload=100))  # 140B fits
        assert port.stats.dropped_pkts == 1
        assert port.occupancy == 1500 + 140


class TestSerialization:
    def test_mtu_takes_12us_at_1g(self):
        sim = Simulator()
        sink = _Sink()
        port = make_port(sim, rate_bps=GBPS)
        port.link = Link(sink, 0)
        port.receive(data_pkt())
        sim.run()
        assert sim.now == 12 * USEC

    def test_propagation_adds_delay(self):
        sim = Simulator()
        sink = _Sink()
        port = make_port(sim, rate_bps=GBPS)
        port.link = Link(sink, 100 * USEC)
        port.receive(data_pkt())
        sim.run()
        assert sim.now == 112 * USEC
        assert len(sink.received) == 1

    def test_back_to_back_packets_serialize_sequentially(self):
        sim = Simulator()
        sink = _Sink()
        arrivals = []
        port = make_port(sim, rate_bps=GBPS)
        port.link = Link(sink, 0)

        class _Tap:
            def receive(self, pkt):
                arrivals.append(sim.now)

        port.link = Link(_Tap(), 0)
        for i in range(3):
            port.receive(data_pkt(seq=i))
        sim.run()
        assert arrivals == [12 * USEC, 24 * USEC, 36 * USEC]

    def test_port_goes_idle_then_resumes(self):
        sim = Simulator()
        port = make_port(sim, rate_bps=GBPS)
        port.receive(data_pkt(seq=0))
        sim.run()
        assert not port.busy
        port.receive(data_pkt(seq=1))
        assert port.busy


class TestMarkingPlumbing:
    def test_dequeue_mark_sets_ce_on_ect(self):
        sim = Simulator()
        sink = _Sink()
        port = make_port(sim, aqm=_MarkAll())
        port.link = Link(sink, 0)
        port.receive(data_pkt(ect=True))
        sim.run()
        assert sink.received[0].ce is True
        assert port.stats.marked_pkts == 1

    def test_non_ect_never_marked(self):
        sim = Simulator()
        sink = _Sink()
        port = make_port(sim, aqm=_MarkAll())
        port.link = Link(sink, 0)
        port.receive(data_pkt(ect=False))
        sim.run()
        assert sink.received[0].ce is False
        assert port.stats.marked_pkts == 0

    def test_enqueue_mark_sets_ce(self):
        sim = Simulator()
        sink = _Sink()
        port = make_port(sim, aqm=_MarkAtEnqueue())
        port.link = Link(sink, 0)
        port.receive(data_pkt(ect=True))
        sim.run()
        assert sink.received[0].ce is True

    def test_double_mark_counted_once(self):
        class _Both(Aqm):
            def on_enqueue(self, port, queue, pkt, now):
                return True

            def on_dequeue(self, port, queue, pkt, now):
                return True

        sim = Simulator()
        port = make_port(sim, aqm=_Both())
        port.receive(data_pkt(ect=True))
        sim.run()
        assert port.stats.marked_pkts == 1

    def test_enq_ts_stamped(self):
        sim = Simulator()
        stamped = []

        class _Spy(Aqm):
            def on_dequeue(self, port, queue, pkt, now):
                stamped.append(pkt.enq_ts)
                return False

        port = make_port(sim, aqm=_Spy())
        sim.schedule(77, lambda: port.receive(data_pkt()))
        sim.run()
        assert stamped == [77]


class TestClassification:
    def test_classifier_selects_queue(self):
        from repro.sched.base import make_queues
        from repro.sched.sp import StrictPriorityScheduler

        sim = Simulator()
        sched = StrictPriorityScheduler(make_queues(3))
        port = make_port(sim, scheduler=sched)
        port.receive(data_pkt(dscp=2, seq=0))
        port.receive(data_pkt(dscp=2, seq=1))
        # first packet went straight to the wire; second is buffered in q2
        assert sched.queues[2].bytes == 1500


class TestOccupancyTracker:
    def test_tracker_sees_every_change(self):
        sim = Simulator()
        port = make_port(sim)
        trace = []
        port.occupancy_tracker = lambda now, occ: trace.append((now, occ))
        port.receive(data_pkt(seq=0))
        port.receive(data_pkt(seq=1))
        sim.run()
        # enqueue(0), dequeue(0), enqueue(1), dequeue(1)
        occupancies = [occ for _, occ in trace]
        assert occupancies == [1500, 0, 1500, 0]
