"""The sweep runner: caching, parallel/serial equivalence, robustness."""

import json
import multiprocessing
import os
import time

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness import sweep as sweep_mod
from repro.harness.runner import run_experiment
from repro.harness.sweep import (
    ResultCache,
    config_key,
    run_sweep,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

BASE = dict(scheduler="dwrr", workload="cache", load=0.5, n_flows=8)


def _grid():
    """Four small configs: 2 schemes x 2 seeds (the acceptance grid)."""
    return [
        ExperimentConfig(scheme=scheme, seed=seed, **BASE)
        for scheme in ("tcn", "red_std")
        for seed in (1, 2)
    ]


def _canon(result):
    return json.dumps(result.payload(), sort_keys=True)


class TestConfigKey:
    def test_stable_across_instances(self):
        a = ExperimentConfig(scheme="tcn", seed=1, **BASE)
        b = ExperimentConfig(scheme="tcn", seed=1, **BASE)
        assert config_key(a) == config_key(b)

    def test_any_field_change_changes_key(self):
        base = ExperimentConfig(scheme="tcn", seed=1, **BASE)
        for variant in (
            ExperimentConfig(scheme="red_std", seed=1, **BASE),
            ExperimentConfig(scheme="tcn", seed=2, **BASE),
            ExperimentConfig(scheme="tcn", seed=1, **{**BASE, "load": 0.6}),
        ):
            assert config_key(base) != config_key(variant)

    def test_code_version_is_part_of_key(self, monkeypatch):
        cfg = ExperimentConfig(scheme="tcn", seed=1, **BASE)
        before = config_key(cfg)
        monkeypatch.setattr(sweep_mod, "_CODE_VERSION", "deadbeefdeadbeef")
        assert config_key(cfg) != before


class TestSerial:
    def test_matches_run_experiment(self):
        cfg = ExperimentConfig(scheme="tcn", seed=1, **BASE)
        direct = run_experiment(cfg)
        outcome = run_sweep([cfg], processes=0)
        res = outcome[0]
        assert res.ok and not res.from_cache
        assert res.completed == direct.completed
        assert res.total == direct.total
        assert res.drops == direct.drops
        assert res.marks == direct.marks
        assert res.sim_ns == direct.sim_ns
        assert res.events == direct.events
        assert res.summary.avg_all_ns == direct.summary.avg_all_ns
        assert res.flow_stats == [
            (f.size_bytes, f.fct_ns) for f in direct.flows if f.completed
        ]
        assert res.all_completed

    def test_results_in_input_order(self):
        configs = _grid()
        outcome = run_sweep(configs, processes=0)
        assert [r.config.scheme for r in outcome] == [
            c.scheme for c in configs
        ]
        assert [r.config.seed for r in outcome] == [c.seed for c in configs]

    def test_exception_becomes_structured_error(self, monkeypatch):
        def boom(cfg):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(sweep_mod, "_execute_config", boom)
        outcome = run_sweep([ExperimentConfig(scheme="tcn", **BASE)], processes=0)
        res = outcome[0]
        assert not res.ok and not outcome.ok
        assert res.error.kind == "exception"
        assert "injected failure" in res.error.traceback
        assert outcome.stats.errors == 1

    def test_progress_callback_fires_per_config(self):
        seen = []
        run_sweep(
            _grid()[:2],
            processes=0,
            progress=lambda done, total, res: seen.append((done, total, res.ok)),
        )
        assert seen == [(1, 2, True), (2, 2, True)]


@pytest.mark.skipif(not HAS_FORK, reason="parallel sweeps need fork")
class TestParallel:
    def test_parallel_results_byte_identical_to_serial(self):
        configs = _grid()
        serial = run_sweep(configs, processes=0)
        parallel = run_sweep(configs, processes=2)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert a.ok and b.ok
            assert _canon(a) == _canon(b)

    def test_crashed_worker_is_reported_not_hung(self, monkeypatch):
        real = sweep_mod._execute_config

        def crash_on_seed_2(cfg):
            if cfg.seed == 2:
                os._exit(17)
            return real(cfg)

        monkeypatch.setattr(sweep_mod, "_execute_config", crash_on_seed_2)
        configs = _grid()
        outcome = run_sweep(configs, processes=2)
        by_seed = {(r.config.scheme, r.config.seed): r for r in outcome}
        for (_, seed), res in by_seed.items():
            if seed == 2:
                assert res.error is not None and res.error.kind == "crash"
                assert res.error.exitcode == 17
            else:
                assert res.ok
        assert outcome.stats.errors == 2

    def test_timed_out_worker_is_terminated(self, monkeypatch):
        real = sweep_mod._execute_config

        def hang_on_seed_2(cfg):
            if cfg.seed == 2:
                time.sleep(300)
            return real(cfg)

        monkeypatch.setattr(sweep_mod, "_execute_config", hang_on_seed_2)
        configs = [
            ExperimentConfig(scheme="tcn", seed=seed, **BASE)
            for seed in (1, 2)
        ]
        start = time.monotonic()
        outcome = run_sweep(configs, processes=2, timeout_s=2.0)
        assert time.monotonic() - start < 60  # returned, did not hang
        ok, timed_out = outcome[0], outcome[1]
        assert ok.ok
        assert timed_out.error is not None
        assert timed_out.error.kind == "timeout"


class TestCache:
    def test_hit_on_identical_config(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = ExperimentConfig(scheme="tcn", seed=1, **BASE)
        first = run_sweep([cfg], processes=0, cache=cache)
        assert first.stats.cache_hits == 0 and first.stats.cache_misses == 1
        assert not first[0].from_cache

        again = run_sweep([cfg], processes=0, cache=cache)
        assert again.stats.cache_hits == 1 and again.stats.cache_misses == 0
        assert again[0].from_cache
        assert _canon(first[0]) == _canon(again[0])

    def test_miss_after_config_change(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(
            [ExperimentConfig(scheme="tcn", seed=1, **BASE)],
            processes=0, cache=cache,
        )
        changed = run_sweep(
            [ExperimentConfig(scheme="tcn", seed=1, **{**BASE, "load": 0.6})],
            processes=0, cache=cache,
        )
        assert changed.stats.cache_hits == 0
        assert changed.stats.cache_misses == 1

    def test_miss_after_code_change(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cfg = ExperimentConfig(scheme="tcn", seed=1, **BASE)
        run_sweep([cfg], processes=0, cache=cache)
        monkeypatch.setattr(sweep_mod, "_CODE_VERSION", "0123456789abcdef")
        again = run_sweep([cfg], processes=0, cache=cache)
        assert again.stats.cache_hits == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = ExperimentConfig(scheme="tcn", seed=1, **BASE)
        run_sweep([cfg], processes=0, cache=cache)
        path = cache.path_for(config_key(cfg))
        with open(path, "w") as fh:
            fh.write("{ not json")
        again = run_sweep([cfg], processes=0, cache=cache)
        assert again.stats.cache_hits == 0
        assert again[0].ok  # re-ran and re-cached

    def test_errors_are_not_cached(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cfg = ExperimentConfig(scheme="tcn", seed=1, **BASE)

        def boom(c):
            raise RuntimeError("no")

        monkeypatch.setattr(sweep_mod, "_execute_config", boom)
        run_sweep([cfg], processes=0, cache=cache)
        assert not os.path.exists(cache.path_for(config_key(cfg)))

    @pytest.mark.skipif(not HAS_FORK, reason="parallel sweeps need fork")
    def test_parallel_sweep_rerun_served_from_cache(self, tmp_path):
        """Acceptance: a >= 4-config sweep at processes >= 2 matches the
        serial path, and re-running it is served >= 90% from cache."""
        cache = ResultCache(tmp_path)
        configs = _grid()
        serial = run_sweep(configs, processes=0)
        first = run_sweep(configs, processes=2, cache=cache)
        assert first.stats.cache_hits == 0
        for a, b in zip(serial, first):
            assert _canon(a) == _canon(b)

        again = run_sweep(configs, processes=2, cache=cache)
        assert again.stats.cache_hits >= 0.9 * len(configs)  # all 4, in fact
        assert again.stats.cache_hits == len(configs)
        for a, b in zip(first, again):
            assert b.from_cache
            assert _canon(a) == _canon(b)


class TestBenchlibRouting:
    def test_run_schemes_routes_through_sweep_cache(self, tmp_path, monkeypatch):
        from benchmarks import benchlib

        monkeypatch.setattr(benchlib, "CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SWEEP_PROCESSES", "0")
        out = benchlib.run_schemes(("tcn", "red_std"), **BASE)
        assert set(out) == {"tcn", "red_std"}
        assert all(not r.from_cache for r in out.values())
        out2 = benchlib.run_schemes(("tcn", "red_std"), **BASE)
        assert all(r.from_cache for r in out2.values())
        assert out["tcn"].summary.avg_all_ns == out2["tcn"].summary.avg_all_ns

    def test_run_schemes_pooled_matches_direct_runs(self, tmp_path, monkeypatch):
        from benchmarks import benchlib

        monkeypatch.setattr(benchlib, "CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SWEEP_PROCESSES", "0")
        pooled = benchlib.run_schemes_pooled(("tcn",), seeds=(1, 2), **BASE)
        direct = [
            run_experiment(ExperimentConfig(scheme="tcn", seed=s, **BASE))
            for s in (1, 2)
        ]
        expected = benchlib.PooledResult(direct)
        got = pooled["tcn"]
        assert got.summary.n_flows == expected.summary.n_flows
        assert got.summary.avg_all_ns == expected.summary.avg_all_ns
        assert got.summary.p99_small_ns == expected.summary.p99_small_ns
        assert got.drops == expected.drops
        assert got.timeouts == expected.timeouts

    def test_sweep_failure_raises(self, tmp_path, monkeypatch):
        from benchmarks import benchlib

        monkeypatch.setattr(benchlib, "CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SWEEP_PROCESSES", "0")

        def boom(cfg):
            raise RuntimeError("injected")

        monkeypatch.setattr(sweep_mod, "_execute_config", boom)
        with pytest.raises(RuntimeError, match="sweep failed"):
            benchlib.run_schemes(("tcn",), **BASE)


class TestSweepCli:
    def test_cli_sweep_serial_with_cache(self, tmp_path, capsys):
        from repro.__main__ import main

        argv = [
            "sweep", "--scheme", "tcn", "--load", "0.5", "--flows", "8",
            "--workload", "cache", "--seed", "1", "--seed", "2",
            "--processes", "0", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 configs" in out and "0 cache hits" in out

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 cache hits" in out

    def test_cli_sweep_no_cache(self, capsys):
        from repro.__main__ import main

        rc = main([
            "sweep", "--scheme", "tcn", "--load", "0.5", "--flows", "8",
            "--workload", "cache", "--processes", "0", "--no-cache",
        ])
        assert rc == 0
        assert "cache hits" in capsys.readouterr().out


class TestResolveProcesses:
    """The spawn-safe bootstrap decision: worker count + start method."""

    def test_serial_when_requested(self):
        assert sweep_mod._resolve_processes(0, 10) == (0, None)
        assert sweep_mod._resolve_processes(1, 10) == (0, None)

    def test_serial_when_single_config(self):
        n, method = sweep_mod._resolve_processes(8, 1)
        assert n == 0 and method is None

    def test_workers_clamped_to_config_count(self):
        n, method = sweep_mod._resolve_processes(8, 3)
        assert n == 3 and method in sweep_mod._START_METHODS

    def test_prefers_fork_over_spawn(self, monkeypatch):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods",
            lambda: ["spawn", "forkserver", "fork"],
        )
        assert sweep_mod._resolve_processes(2, 4) == (2, "fork")

    def test_falls_back_to_spawn(self, monkeypatch):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        assert sweep_mod._resolve_processes(2, 4) == (2, "spawn")

    def test_no_start_method_means_serial(self, monkeypatch):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: []
        )
        assert sweep_mod._resolve_processes(4, 4) == (0, None)


class TestSerialFallback:
    """No start method at all: run serially, but never silently."""

    def test_flag_and_warning(self, monkeypatch, capsys):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: []
        )
        outcome = run_sweep(_grid()[:2], processes=4)
        assert outcome.ok
        assert outcome.stats.serial_fallback
        err = capsys.readouterr().err
        assert "WARNING" in err and "serially" in err

    def test_requested_serial_does_not_trip_the_flag(self, capsys):
        outcome = run_sweep(_grid()[:2], processes=0)
        assert not outcome.stats.serial_fallback
        assert "WARNING" not in capsys.readouterr().err

    def test_results_match_parallel_path(self, monkeypatch):
        configs = _grid()[:2]
        normal = run_sweep(configs, processes=0)
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: []
        )
        fallback = run_sweep(configs, processes=4)
        for a, b in zip(normal, fallback):
            assert _canon(a) == _canon(b)


@pytest.mark.skipif(
    "spawn" not in multiprocessing.get_all_start_methods(),
    reason="spawn unavailable",
)
class TestSpawnBootstrap:
    def test_sweep_runs_under_spawn(self, monkeypatch):
        """The worker entry point must bootstrap without inheriting the
        parent's interpreter state (the spawn-safety contract)."""
        configs = _grid()[:2]
        serial = run_sweep(configs, processes=0)
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        spawned = run_sweep(configs, processes=2)
        assert spawned.ok and not spawned.stats.serial_fallback
        for a, b in zip(serial, spawned):
            assert _canon(a) == _canon(b)


class TestAtomicCacheWrites:
    def test_truncated_entry_is_a_miss_not_a_crash(self, tmp_path):
        """Inject the torn write os.replace() exists to prevent: a valid
        JSON prefix cut mid-payload must read as a miss and be re-run."""
        cache = ResultCache(tmp_path)
        cfg = ExperimentConfig(scheme="tcn", seed=1, **BASE)
        run_sweep([cfg], processes=0, cache=cache)
        path = cache.path_for(config_key(cfg))
        whole = open(path).read()
        with open(path, "w") as fh:
            fh.write(whole[: len(whole) // 2])
        again = run_sweep([cfg], processes=0, cache=cache)
        assert again.stats.cache_hits == 0
        assert again[0].ok
        # the re-run republished a complete entry
        final = run_sweep([cfg], processes=0, cache=cache)
        assert final.stats.cache_hits == 1

    def test_failed_put_leaves_no_entry_and_no_tmp(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cfg = ExperimentConfig(scheme="tcn", seed=1, **BASE)

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(sweep_mod.os, "replace", boom)
        with pytest.raises(OSError, match="disk full"):
            cache.put(cfg, {"fake": 1}, 0.0)
        assert os.listdir(tmp_path) == []  # no final entry, no *.tmp.*

    def test_put_is_atomic_under_concurrent_read(self, tmp_path):
        """A reader polling during put() only ever sees a complete entry."""
        cache = ResultCache(tmp_path)
        cfg = ExperimentConfig(scheme="tcn", seed=1, **BASE)
        real_replace = os.replace
        observed = []

        def racing_replace(src, dst):
            # the moment before publication: the reader must miss
            observed.append(cache.get(cfg))
            real_replace(src, dst)
            # the moment after: the reader must hit the complete entry
            observed.append(cache.get(cfg))

        import unittest.mock as mock

        with mock.patch.object(sweep_mod.os, "replace", racing_replace):
            cache.put(cfg, {"fake": 1}, 0.0)
        before, after = observed
        assert before is None
        assert after is not None and after["payload"] == {"fake": 1}
