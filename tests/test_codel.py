"""CoDel in marking mode: the windowed-minimum control law."""

from repro.aqm.codel import CoDel
from repro.net.queue import PacketQueue
from repro.units import MSEC, MTU, USEC
from tests.helpers import data_pkt


def _dequeue(aqm, queue, sojourn_ns, now):
    pkt = data_pkt()
    pkt.enq_ts = now - sojourn_ns
    return aqm.on_dequeue(None, queue, pkt, now)


def _busy_queue():
    q = PacketQueue(0)
    q.bytes = 10 * MTU  # keep the queue "above one MTU" so CoDel stays armed
    return q


class TestFirstMarkTiming:
    def test_no_mark_before_interval_elapses(self):
        """Sojourn above target must persist a full interval before the
        first mark — CoDel's slow reaction to bursts (§4.3)."""
        aqm = CoDel(target_ns=50 * USEC, interval_ns=1 * MSEC)
        q = _busy_queue()
        now = 0
        marks = []
        for _ in range(50):  # 50 departures, 20us apart = 1 ms total
            now += 20_000
            marks.append(_dequeue(aqm, q, 200 * USEC, now))
        assert not any(marks[:-1]), "marked before a full interval elapsed"

    def test_marks_after_interval(self):
        aqm = CoDel(target_ns=50 * USEC, interval_ns=1 * MSEC)
        q = _busy_queue()
        now = 0
        marked = False
        for _ in range(120):
            now += 20_000
            marked = marked or _dequeue(aqm, q, 200 * USEC, now)
        assert marked

    def test_tcn_would_mark_immediately_where_codel_waits(self):
        """The head-to-head of §4.3: same packet, same sojourn — TCN marks
        on the spot, CoDel does not."""
        from repro.core.tcn import Tcn

        codel = CoDel(target_ns=50 * USEC, interval_ns=1 * MSEC)
        tcn = Tcn(100 * USEC)
        q = _busy_queue()
        pkt = data_pkt()
        pkt.enq_ts = 0
        now = 300 * USEC  # sojourn 300us, way above both thresholds
        assert tcn.on_dequeue(None, q, pkt, now) is True
        assert codel.on_dequeue(None, q, pkt, now) is False


class TestWindowReset:
    def test_one_good_packet_resets_window(self):
        aqm = CoDel(target_ns=50 * USEC, interval_ns=1 * MSEC)
        q = _busy_queue()
        now = 0
        for _ in range(40):
            now += 20_000
            _dequeue(aqm, q, 200 * USEC, now)
        # a single below-target departure resets first_above_time
        now += 20_000
        _dequeue(aqm, q, 10 * USEC, now)
        # above target again: must wait a fresh interval
        marks = []
        for _ in range(45):
            now += 20_000
            marks.append(_dequeue(aqm, q, 200 * USEC, now))
        assert not any(marks[:-1])

    def test_small_backlog_disarms(self):
        """Below one MTU of backlog CoDel never marks (standing-queue rule)."""
        aqm = CoDel(target_ns=50 * USEC, interval_ns=1 * MSEC)
        q = PacketQueue(0)
        q.bytes = MTU  # not above one MTU
        now = 0
        marks = []
        for _ in range(200):
            now += 20_000
            marks.append(_dequeue(aqm, q, 500 * USEC, now))
        assert not any(marks)


class TestControlLaw:
    def _drive_persistent(self, aqm, q, duration_ns, step_ns=20_000, sojourn=200 * USEC):
        now, marks = 0, 0
        while now < duration_ns:
            now += step_ns
            if _dequeue(aqm, q, sojourn, now):
                marks += 1
        return marks

    def test_marking_rate_ramps_with_sqrt_count(self):
        """Persistent delay: the second half of a long episode marks more
        often than the first (interval/sqrt(count) shrinks)."""
        aqm = CoDel(target_ns=50 * USEC, interval_ns=1 * MSEC)
        q = _busy_queue()
        first = self._drive_persistent(aqm, q, 20 * MSEC)
        second = self._drive_persistent(aqm, q, 20 * MSEC)
        assert second > first >= 1

    def test_exits_marking_when_delay_clears(self):
        aqm = CoDel(target_ns=50 * USEC, interval_ns=1 * MSEC)
        q = _busy_queue()
        self._drive_persistent(aqm, q, 10 * MSEC)
        st = aqm._state_for(q)
        assert st.marking is True
        _dequeue(aqm, q, 10 * USEC, 11 * MSEC)
        assert st.marking is False

    def test_per_queue_state_isolated(self):
        aqm = CoDel(target_ns=50 * USEC, interval_ns=1 * MSEC)
        q_bad, q_good = _busy_queue(), _busy_queue()
        now = 0
        for _ in range(120):
            now += 20_000
            _dequeue(aqm, q_bad, 300 * USEC, now)
        # q_good has had no history: it must still wait a full interval
        assert _dequeue(aqm, q_good, 300 * USEC, now + 1) is False

    def test_reentry_resumes_high_count(self):
        """Linux heuristic: re-entering marking shortly after exit resumes
        near the previous rate instead of starting from count=1."""
        aqm = CoDel(target_ns=50 * USEC, interval_ns=1 * MSEC)
        q = _busy_queue()
        self._drive_persistent(aqm, q, 30 * MSEC)
        st = aqm._state_for(q)
        high_count = st.count
        assert high_count > 2
        # brief good period
        _dequeue(aqm, q, 10 * USEC, 31 * MSEC)
        # persistent delay returns quickly
        now = 31 * MSEC
        while not _dequeue(aqm, q, 300 * USEC, now):
            now += 20_000
        assert aqm._state_for(q).count >= max(2, high_count // 2)
