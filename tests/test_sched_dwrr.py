"""DWRR: quantum fairness, round rotation, round-time observation."""

from hypothesis import given, settings, strategies as st

from repro.sched.base import make_queues
from repro.sched.dwrr import DwrrScheduler
from tests.helpers import drain_in_order, fill
from repro.units import MSS


def _served_bytes(sched, rounds_pkts):
    """Dequeue ``rounds_pkts`` packets, returning bytes served per queue."""
    served = {q.index: 0 for q in sched.queues}
    for _ in range(rounds_pkts):
        result = sched.dequeue(0)
        if result is None:
            break
        pkt, queue = result
        served[queue.index] += pkt.wire_size
    return served


class TestFairness:
    def test_equal_quanta_equal_bytes(self):
        s = DwrrScheduler(make_queues(2, quanta=[1500, 1500]))
        fill(s, 0, 100)
        fill(s, 1, 100)
        served = _served_bytes(s, 100)
        assert abs(served[0] - served[1]) <= 1500

    def test_weighted_quanta(self):
        """Quantum 3000 vs 1500 -> 2:1 byte ratio."""
        s = DwrrScheduler(make_queues(2, quanta=[3000, 1500]))
        fill(s, 0, 200)
        fill(s, 1, 200)
        served = _served_bytes(s, 150)
        ratio = served[0] / served[1]
        assert 1.8 <= ratio <= 2.2

    def test_work_conserving(self):
        """An empty queue's share goes to the busy one."""
        s = DwrrScheduler(make_queues(2, quanta=[1500, 1500]))
        fill(s, 0, 10)
        assert len(drain_in_order(s)) == 10

    def test_idle_queue_rejoins_fairly(self):
        s = DwrrScheduler(make_queues(2, quanta=[1500, 1500]))
        fill(s, 0, 50)
        for _ in range(10):
            s.dequeue(0)
        fill(s, 1, 50)
        served = _served_bytes(s, 60)
        # after queue 1 joins, service alternates: shares roughly equal
        assert abs(served[0] - served[1]) <= 3 * 1500

    def test_small_packets_respect_quantum(self):
        """Quantum is in bytes, not packets: tiny packets get more turns."""
        s = DwrrScheduler(make_queues(2, quanta=[1500, 1500]))
        fill(s, 0, 300, size=110)  # 150B wire
        fill(s, 1, 30, size=MSS)   # 1500B wire
        served = _served_bytes(s, 200)
        assert served[1] > 0
        ratio = served[0] / served[1]
        assert 0.7 <= ratio <= 1.4


class TestRoundObserver:
    def test_round_time_reported(self):
        """With 2 busy queues at quantum 1500 and instant dequeues at t=0,
        the observer fires with positive round times once time advances."""
        s = DwrrScheduler(make_queues(2, quanta=[1500, 1500]))
        seen = []
        s.round_observer = lambda q, rt, now: seen.append((q.index, rt))
        fill(s, 0, 10)
        fill(s, 1, 10)
        # simulate time advancing 10us per dequeue
        now = 0
        for _ in range(12):
            s.dequeue(now)
            now += 10_000
        assert seen, "round observer never fired"
        assert all(rt > 0 for _, rt in seen)
        # with alternating service, each round spans ~2 packets = 20us
        assert any(15_000 <= rt <= 25_000 for _, rt in seen)

    def test_no_sample_after_idle_gap(self):
        """A queue that drains and comes back must not report the idle gap
        as a round time (it would wreck MQ-ECN's estimate)."""
        s = DwrrScheduler(make_queues(2, quanta=[1500, 1500]))
        seen = []
        s.round_observer = lambda q, rt, now: seen.append(rt)
        fill(s, 0, 2)
        s.dequeue(0)
        s.dequeue(100)  # queue 0 now empty
        fill(s, 0, 2)
        s.dequeue(1_000_000)  # long idle gap before this service turn
        assert all(rt < 900_000 for rt in seen)


class TestAccounting:
    def test_dequeue_returns_owning_queue(self):
        s = DwrrScheduler(make_queues(3, quanta=[1500] * 3))
        fill(s, 2, 1)
        pkt, queue = s.dequeue(0)
        assert queue is s.queues[2]

    def test_total_bytes_consistent(self):
        s = DwrrScheduler(make_queues(2, quanta=[1500, 1500]))
        fill(s, 0, 5)
        fill(s, 1, 3)
        assert s.total_bytes == 8 * 1500
        drain_in_order(s)
        assert s.total_bytes == 0
        assert s.is_empty


@settings(max_examples=30, deadline=None)
@given(
    quanta=st.lists(st.integers(min_value=1500, max_value=9000), min_size=2, max_size=6),
    backlog=st.integers(min_value=30, max_value=80),
)
def test_property_byte_shares_track_quanta(quanta, backlog):
    """Long-run byte shares approach quantum proportions for backlogged
    queues (the DWRR O(1) fairness theorem, within one max-packet bound)."""
    n = len(quanta)
    s = DwrrScheduler(make_queues(n, quanta=quanta))
    for q in range(n):
        fill(s, q, backlog * 4)
    total_pkts = backlog * n
    served = _served_bytes(s, total_pkts)
    total_served = sum(served.values())
    total_quanta = sum(quanta)
    for q in range(n):
        expected = total_served * quanta[q] / total_quanta
        # fairness bound: within one quantum + one MTU per queue of fair share
        slack = quanta[q] + 1500 + total_served * 0.12
        assert abs(served[q] - expected) <= slack
