"""Workload CDFs: Fig. 4's distributions and their paper-cited properties."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.units import KB, MB
from repro.workloads.cdf import EmpiricalCdf
from repro.workloads.distributions import (
    ALL_WORKLOADS,
    CACHE,
    DATA_MINING,
    HADOOP,
    WEB_SEARCH,
    workload_by_name,
)


class TestEmpiricalCdf:
    def test_mean_of_uniform_segment(self):
        cdf = EmpiricalCdf("u", [(1000, 0.0), (2000, 1.0)])
        assert cdf.mean() == 1500.0

    def test_quantiles_interpolate(self):
        cdf = EmpiricalCdf("u", [(1000, 0.0), (2000, 1.0)])
        assert cdf.quantile(0.5) == 1500.0
        assert cdf.quantile(0.0) == 1000.0
        assert cdf.quantile(1.0) == 2000.0

    def test_fraction_below_inverts_quantile(self):
        cdf = EmpiricalCdf("u", [(1000, 0.0), (3000, 0.5), (9000, 1.0)])
        for p in (0.1, 0.25, 0.5, 0.75, 0.9):
            assert cdf.fraction_below(cdf.quantile(p)) == pytest.approx(p)

    def test_byte_fraction_below_max_is_one(self):
        for w in ALL_WORKLOADS:
            assert w.byte_fraction_below(w.sizes[-1]) == pytest.approx(1.0)

    def test_byte_fraction_monotone(self):
        w = WEB_SEARCH
        points = [w.byte_fraction_below(x) for x in (10 * KB, 1 * MB, 10 * MB)]
        assert points == sorted(points)

    def test_sampling_respects_support(self):
        rng = random.Random(0)
        for w in ALL_WORKLOADS:
            for _ in range(200):
                s = w.sample(rng)
                assert 1 <= s <= w.sizes[-1]

    def test_sample_mean_matches_analytic(self):
        rng = random.Random(7)
        cdf = EmpiricalCdf("u", [(1000, 0.0), (2000, 1.0)])
        samples = [cdf.sample(rng) for _ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(1500, rel=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCdf("bad", [(100, 0.0)])
        with pytest.raises(ValueError):
            EmpiricalCdf("bad", [(100, 0.1), (200, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalCdf("bad", [(100, 0.0), (50, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalCdf("bad", [(0, 0.0), (100, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalCdf("bad", [(100, 0.0), (200, 0.5)])


class TestPaperProperties:
    """The statements the paper makes about Fig. 4."""

    def test_all_heavy_tailed(self):
        """Most flows are small but most bytes are in large flows."""
        for w in ALL_WORKLOADS:
            median = w.quantile(0.5)
            # the median flow contributes a tiny share of the bytes
            assert w.byte_fraction_below(median) < 0.25, w.name

    def test_web_search_least_skewed(self):
        """~60% of web search bytes come from flows < 10 MB — far more
        than the other heavy-tail workloads' sub-10MB byte share."""
        ws = WEB_SEARCH.byte_fraction_below(10 * MB)
        assert 0.45 <= ws <= 0.75
        assert ws > DATA_MINING.byte_fraction_below(10 * MB)
        assert ws > HADOOP.byte_fraction_below(10 * MB)

    def test_small_flow_share_substantial(self):
        """Every workload has a real population of (0,100KB] small flows,
        the bin the paper reports tail FCTs for."""
        for w in ALL_WORKLOADS:
            assert w.fraction_below(100 * KB) >= 0.3, w.name

    def test_web_search_has_large_flows(self):
        assert WEB_SEARCH.fraction_below(10 * MB) < 1.0

    def test_cache_is_small_flow_dominated(self):
        assert CACHE.fraction_below(100 * KB) > 0.95

    def test_lookup_by_name(self):
        for w in ALL_WORKLOADS:
            assert workload_by_name(w.name) is w
        with pytest.raises(KeyError):
            workload_by_name("nope")


@settings(max_examples=50)
@given(p=st.floats(min_value=0.0, max_value=1.0))
def test_property_quantile_monotone(p):
    q1 = WEB_SEARCH.quantile(p)
    q2 = WEB_SEARCH.quantile(min(1.0, p + 0.05))
    assert q2 >= q1


@settings(max_examples=30)
@given(
    knots=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=10**9),
            st.floats(min_value=0.0, max_value=1.0),
        ),
        min_size=2,
        max_size=10,
    )
)
def test_property_cdf_roundtrip_or_reject(knots):
    """Any knot list either builds a consistent CDF or raises ValueError."""
    sizes = sorted(k[0] for k in knots)
    probs = sorted(k[1] for k in knots)
    probs[0], probs[-1] = 0.0, 1.0
    cdf = EmpiricalCdf("gen", list(zip(sizes, probs)))
    rng = random.Random(0)
    for _ in range(50):
        assert 1 <= cdf.sample(rng) <= sizes[-1]
    assert cdf.mean() <= sizes[-1]
