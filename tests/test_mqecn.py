"""MQ-ECN: round-time capacity estimation and its round-robin-only scope."""

import pytest

from repro.aqm.mqecn import MqEcn
from repro.sched.base import make_queues
from repro.sched.dwrr import DwrrScheduler
from repro.sched.wfq import WfqScheduler
from repro.sched.sp import StrictPriorityScheduler
from repro.sched.pifo import PifoScheduler
from repro.sim.engine import Simulator
from repro.units import GBPS, SEC, USEC
from tests.helpers import data_pkt, fill, make_port


def _mqecn_port(n_queues=2, rate=10 * GBPS, rtt=100 * USEC, quantum=18_000):
    sim = Simulator()
    sched = DwrrScheduler(make_queues(n_queues, quanta=[quantum] * n_queues))
    aqm = MqEcn(rtt)
    port = make_port(sim, scheduler=sched, aqm=aqm, rate_bps=rate)
    return sim, port, sched, aqm


class TestSchedulerCompatibility:
    @pytest.mark.parametrize(
        "sched_cls", [WfqScheduler, StrictPriorityScheduler, PifoScheduler]
    )
    def test_rejects_non_round_robin(self, sched_cls):
        sim = Simulator()
        sched = sched_cls(make_queues(2))
        with pytest.raises(TypeError, match="round-robin"):
            make_port(sim, scheduler=sched, aqm=MqEcn(100 * USEC))

    def test_accepts_dwrr(self):
        _mqecn_port()  # must not raise


class TestCapacityEstimate:
    def test_defaults_to_line_rate(self):
        sim, port, sched, aqm = _mqecn_port()
        assert aqm.rate_estimate_bps(sched.queues[0]) == 10 * GBPS

    def test_round_time_drives_estimate(self):
        """quantum 18 KB served once per 28.8 us -> 5 Gbps."""
        sim, port, sched, aqm = _mqecn_port()
        q0 = sched.queues[0]
        round_ns = 18_000 * 8 * SEC // (5 * GBPS)
        for i in range(20):
            aqm._on_round(q0, round_ns, i * round_ns)
        assert aqm.rate_estimate_bps(q0) == pytest.approx(5 * GBPS, rel=0.01)

    def test_estimate_capped_at_line_rate(self):
        sim, port, sched, aqm = _mqecn_port()
        q0 = sched.queues[0]
        aqm._on_round(q0, 1, 0)  # absurdly fast round
        assert aqm.rate_estimate_bps(q0) == 10 * GBPS

    def test_beta_weighting_converges_fast(self):
        """beta = 0.75 on fresh samples: ~5 rounds to within 5% (the fast
        convergence of Fig. 2c)."""
        sim, port, sched, aqm = _mqecn_port()
        q0 = sched.queues[0]
        aqm._on_round(q0, 14_400, 0)  # 10 Gbps round (18KB/14.4us)
        target = 28_800  # 5 Gbps round
        n = 0
        while abs(aqm.rate_estimate_bps(q0) - 5 * GBPS) / (5 * GBPS) > 0.05:
            n += 1
            aqm._on_round(q0, target, n * target)
        assert n <= 6


class TestThreshold:
    def test_threshold_is_rate_times_rtt(self):
        sim, port, sched, aqm = _mqecn_port()
        q0 = sched.queues[0]
        round_ns = 18_000 * 8 * SEC // (5 * GBPS)
        for i in range(30):
            aqm._on_round(q0, round_ns, i * round_ns)
        # 5 Gbps x 100 us = 62.5 KB
        assert aqm.threshold_bytes(q0) == pytest.approx(62_500, rel=0.02)

    def test_threshold_capped_at_standard(self):
        sim, port, sched, aqm = _mqecn_port()
        q0 = sched.queues[0]
        # K_std = 10 Gbps x 100 us = 125 KB
        assert aqm.threshold_bytes(q0) == pytest.approx(125_000, rel=0.01)

    def test_marking_uses_dynamic_threshold(self):
        sim, port, sched, aqm = _mqecn_port()
        q0 = sched.queues[0]
        round_ns = 18_000 * 8 * SEC // (5 * GBPS)
        for i in range(30):
            aqm._on_round(q0, round_ns, i * round_ns)
        fill(sched, 0, 50)  # 75 KB > 62.5 KB dynamic threshold
        assert aqm.on_enqueue(port, q0, data_pkt(), 10**9) is True

    def test_idle_reset_restores_standard_threshold(self):
        sim, port, sched, aqm = _mqecn_port()
        q0 = sched.queues[0]
        round_ns = 18_000 * 8 * SEC // (2 * GBPS)  # low-rate history
        for i in range(30):
            aqm._on_round(q0, round_ns, i * round_ns)
        last = 30 * round_ns
        aqm.on_dequeue(port, q0, data_pkt(), last)
        # queue empty, then idle far longer than T_idle
        much_later = last + 10_000_000
        aqm.on_enqueue(port, q0, data_pkt(), much_later)
        assert aqm.rate_estimate_bps(q0) == 10 * GBPS

    def test_validation(self):
        with pytest.raises(ValueError):
            MqEcn(100 * USEC, beta=0.0)


class TestEndToEnd:
    def test_busy_queues_converge_to_shares(self):
        """Drive a real port: two backlogged queues at 10G, MQ-ECN's
        estimates approach 5 Gbps each."""
        sim, port, sched, aqm = _mqecn_port()
        for i in range(400):
            port.receive(data_pkt(flow_id=1, seq=i, dscp=0))
            port.receive(data_pkt(flow_id=2, seq=i, dscp=1))
        sim.run()
        # after the drain both saw many rounds at equal shares
        for q in sched.queues:
            # estimates were live while busy; final smoothed round times
            # correspond to ~5 Gbps service each
            rate = aqm.rate_estimate_bps(q)
            assert rate == pytest.approx(5 * GBPS, rel=0.25)
