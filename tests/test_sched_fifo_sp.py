"""FIFO and strict-priority scheduler semantics."""

import pytest

from repro.sched.base import make_queues
from repro.sched.fifo import FifoScheduler
from repro.sched.sp import StrictPriorityScheduler
from tests.helpers import data_pkt, drain_in_order, fill


class TestFifo:
    def test_fifo_order(self):
        s = FifoScheduler()
        for i in range(5):
            s.enqueue(data_pkt(seq=i), 0, 0)
        assert [p.seq for p in drain_in_order(s)] == list(range(5))

    def test_empty_dequeue_returns_none(self):
        assert FifoScheduler().dequeue(0) is None

    def test_total_bytes(self):
        s = FifoScheduler()
        fill(s, 0, 3)
        assert s.total_bytes == 3 * 1500
        s.dequeue(0)
        assert s.total_bytes == 2 * 1500


class TestStrictPriority:
    def test_lower_index_is_higher_priority_by_default(self):
        s = StrictPriorityScheduler(make_queues(3))
        fill(s, 2, 2)
        fill(s, 0, 2)
        fill(s, 1, 2)
        order = [p.dscp for p in drain_in_order(s)]
        assert order == [0, 0, 1, 1, 2, 2]

    def test_explicit_priorities_override_index(self):
        queues = make_queues(3, priorities=[2, 0, 1])
        s = StrictPriorityScheduler(queues)
        for q in range(3):
            fill(s, q, 1)
        assert [p.dscp for p in drain_in_order(s)] == [1, 2, 0]

    def test_high_priority_preempts_between_packets(self):
        """A packet arriving in a higher queue is served before the backlog
        of lower queues (non-preemptive per packet, preemptive per queue)."""
        s = StrictPriorityScheduler(make_queues(2))
        fill(s, 1, 3)
        pkt, _ = s.dequeue(0)
        assert pkt.dscp == 1
        fill(s, 0, 1)
        pkt, _ = s.dequeue(0)
        assert pkt.dscp == 0  # newcomer wins despite queue-1 backlog

    def test_starvation_is_real(self):
        """SP really starves: while queue 0 is backlogged, queue 1 never
        transmits (the paper's rationale for reserving SP for tiny traffic)."""
        s = StrictPriorityScheduler(make_queues(2))
        fill(s, 0, 10)
        fill(s, 1, 10)
        first_ten = [s.dequeue(0)[0].dscp for _ in range(10)]
        assert first_ten == [0] * 10

    def test_needs_a_queue(self):
        with pytest.raises(ValueError):
            StrictPriorityScheduler([])
