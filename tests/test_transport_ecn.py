"""ECN responses: DCTCP's proportional cut vs ECN*'s halving; receiver echo."""

import pytest

from repro.net.host import Host
from repro.net.nic import make_nic
from repro.net.packet import Packet, PacketKind, make_data
from repro.sim.engine import Simulator
from repro.transport.dctcp import DctcpSender
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.transport.tcp import EcnStarSender
from repro.units import GBPS, MB, MSS


def _sender(cls, size=10 * MB, cwnd=100.0):
    sim = Simulator()
    nic = make_nic(sim, GBPS, link=None)  # transmissions vanish; we drive ACKs
    host = Host(sim, 0, nic)
    flow = Flow(1, 0, 1, size)
    sender = cls(sim, host, flow, init_cwnd=cwnd)
    sender.start()
    return sim, sender


def _ack(sender, ack, ece):
    pkt = Packet(1, 1, 0, PacketKind.ACK, seq=ack)
    pkt.ece = ece
    pkt.ts = 0
    sender.on_ack(pkt)


class TestEcnStar:
    def test_halves_on_ece(self):
        sim, s = _sender(EcnStarSender, cwnd=100)
        _ack(s, 1, ece=True)
        # the halving applies first; normal per-ACK growth then adds 1/cwnd
        assert s.cwnd == pytest.approx(50.0, rel=0.01)

    def test_at_most_one_cut_per_window(self):
        sim, s = _sender(EcnStarSender, cwnd=100)
        _ack(s, 1, ece=True)
        _ack(s, 2, ece=True)  # same window: no further cut
        assert s.cwnd == pytest.approx(50.0, rel=0.01)

    def test_second_window_cuts_again(self):
        sim, s = _sender(EcnStarSender, cwnd=100)
        _ack(s, 1, ece=True)
        boundary = s.snd_nxt
        # the cut window covers segments < boundary; the ACK of segment
        # `boundary` itself (ack boundary+1) belongs to the next window
        for a in range(2, boundary + 2):
            _ack(s, a, ece=(a == boundary + 1))
        assert s.cwnd < 50.0

    def test_floor_at_one_packet(self):
        sim, s = _sender(EcnStarSender, cwnd=1)
        _ack(s, 1, ece=True)
        assert s.cwnd >= 1.0

    def test_clean_acks_grow_window(self):
        sim, s = _sender(EcnStarSender, cwnd=10)
        for a in range(1, 6):
            _ack(s, a, ece=False)
        assert s.cwnd > 10


class TestDctcp:
    def test_alpha_starts_conservative(self):
        sim, s = _sender(DctcpSender)
        assert s.alpha == 1.0

    def test_first_mark_cuts_half_with_alpha_one(self):
        sim, s = _sender(DctcpSender, cwnd=100)
        _ack(s, 1, ece=True)
        assert s.cwnd == pytest.approx(50.0, rel=0.01)

    def test_alpha_decays_without_marks(self):
        sim, s = _sender(DctcpSender, cwnd=16)
        s.ssthresh = 16  # congestion avoidance: windows stay ~16 segments
        # many clean windows: alpha decays by (1-g) at each boundary
        for a in range(1, 2000):
            _ack(s, a, ece=False)
        assert s.alpha < 0.1

    def test_alpha_tracks_marking_fraction(self):
        """Steady ~50% marking: alpha converges near 0.5, and cuts shrink
        cwnd by ~alpha/2 — the gentle DCTCP response."""
        sim, s = _sender(DctcpSender, cwnd=32)
        for a in range(1, 1500):
            _ack(s, a, ece=(a % 2 == 0))
        assert 0.3 <= s.alpha <= 0.7

    def test_fully_marked_behaves_like_halving(self):
        sim, s = _sender(DctcpSender, cwnd=64)
        for a in range(1, 800):
            _ack(s, a, ece=True)
        assert s.alpha > 0.9

    def test_cut_proportional_to_alpha(self):
        sim, s = _sender(DctcpSender, cwnd=100)
        s.alpha = 0.2
        _ack(s, 1, ece=True)
        assert s.cwnd == pytest.approx(90.0, rel=0.01)

    def test_one_cut_per_window(self):
        sim, s = _sender(DctcpSender, cwnd=100)
        s.alpha = 0.5
        _ack(s, 1, ece=True)
        after_first = s.cwnd
        _ack(s, 2, ece=True)
        assert s.cwnd == pytest.approx(after_first, rel=0.001)


class TestReceiverEcho:
    def _rx(self):
        sim = Simulator()
        sent = []

        class _CaptureNic:
            def receive(self, pkt):
                sent.append(pkt)

        host = Host(sim, 1, _CaptureNic())
        flow = Flow(1, 0, 1, 10 * MSS)
        rx = Receiver(sim, host, flow)
        return sim, rx, sent

    def _data(self, seq, ce):
        pkt = make_data(1, 0, 1, seq=seq, payload=MSS, ect=True, dscp=0, ts=0)
        pkt.ce = ce
        return pkt

    def test_echoes_ce_per_packet(self):
        sim, rx, sent = self._rx()
        rx.on_data(self._data(0, ce=True))
        rx.on_data(self._data(1, ce=False))
        rx.on_data(self._data(2, ce=True))
        assert [a.ece for a in sent] == [True, False, True]

    def test_cumulative_ack_advances(self):
        sim, rx, sent = self._rx()
        for seq in range(3):
            rx.on_data(self._data(seq, ce=False))
        assert [a.seq for a in sent] == [1, 2, 3]

    def test_out_of_order_buffered(self):
        sim, rx, sent = self._rx()
        rx.on_data(self._data(0, ce=False))
        rx.on_data(self._data(2, ce=False))  # gap at 1
        assert sent[-1].seq == 1  # dupack
        rx.on_data(self._data(1, ce=False))
        assert sent[-1].seq == 3  # cumulative jump over the buffered 2

    def test_duplicate_data_still_acked(self):
        sim, rx, sent = self._rx()
        rx.on_data(self._data(0, ce=False))
        rx.on_data(self._data(0, ce=False))
        assert len(sent) == 2
        assert sent[-1].seq == 1

    def test_completion_recorded_once(self):
        sim = Simulator()
        done = []

        class _Nic:
            def receive(self, pkt):
                pass

        host = Host(sim, 1, _Nic())
        flow = Flow(1, 0, 1, 3 * MSS)
        rx = Receiver(sim, host, flow, on_complete=done.append)
        for seq in (0, 1, 2, 2):
            rx.on_data(self._data(seq, ce=False))
        assert done == [flow]
        assert flow.completed and flow.fct_ns is not None
