"""Poisson flow generation: load calibration, determinism, partitioning."""

import pytest

from repro.sim.rng import RngFactory
from repro.units import GBPS, SEC
from repro.workloads.distributions import CACHE, WEB_SEARCH
from repro.workloads.generator import FlowGenerator


def _gen(seed=1):
    return FlowGenerator(RngFactory(seed))


class TestManyToOne:
    def test_offered_load_close_to_target(self):
        flows = _gen().many_to_one(
            senders=range(1, 9), receiver=0, cdf=WEB_SEARCH,
            load=0.6, link_rate_bps=GBPS, n_flows=2000,
        )
        span = max(f.start_ns for f in flows)
        offered = sum(f.size_bytes for f in flows) * 8 * SEC / span
        assert offered == pytest.approx(0.6 * GBPS, rel=0.15)

    def test_all_target_receiver(self):
        flows = _gen().many_to_one(
            senders=[1, 2, 3], receiver=0, cdf=CACHE,
            load=0.5, link_rate_bps=GBPS, n_flows=100,
        )
        assert all(f.dst == 0 for f in flows)
        assert all(f.src in (1, 2, 3) for f in flows)

    def test_services_evenly_spread(self):
        flows = _gen().many_to_one(
            senders=[1, 2], receiver=0, cdf=CACHE,
            load=0.5, link_rate_bps=GBPS, n_flows=2000, n_services=4,
        )
        counts = [0] * 4
        for f in flows:
            counts[f.service] += 1
        assert min(counts) > 300

    def test_start_times_strictly_increase(self):
        flows = _gen().many_to_one(
            senders=[1], receiver=0, cdf=CACHE,
            load=0.5, link_rate_bps=GBPS, n_flows=500,
        )
        starts = [f.start_ns for f in flows]
        assert starts == sorted(starts)
        assert len(set(starts)) == len(starts)

    def test_deterministic_across_schemes(self):
        """The whole point of seeding: two runs generate identical traffic
        so scheme comparisons are apples-to-apples."""
        a = _gen(5).many_to_one([1, 2], 0, WEB_SEARCH, 0.7, GBPS, 200)
        b = _gen(5).many_to_one([1, 2], 0, WEB_SEARCH, 0.7, GBPS, 200)
        assert [(f.src, f.size_bytes, f.start_ns) for f in a] == [
            (f.src, f.size_bytes, f.start_ns) for f in b
        ]

    def test_load_bounds(self):
        with pytest.raises(ValueError):
            _gen().many_to_one([1], 0, CACHE, 0.0, GBPS, 10)
        with pytest.raises(ValueError):
            _gen().many_to_one([1], 0, CACHE, 1.0, GBPS, 10)


class TestAllToAll:
    def test_no_self_flows(self):
        flows = _gen().all_to_all(
            hosts=range(8), cdfs=[CACHE], load=0.5,
            edge_rate_bps=GBPS, n_flows=500,
        )
        assert all(f.src != f.dst for f in flows)

    def test_service_partition_by_pair(self):
        flows = _gen().all_to_all(
            hosts=range(8), cdfs=[CACHE] * 4, load=0.5,
            edge_rate_bps=GBPS, n_flows=500,
        )
        for f in flows:
            assert f.service == (f.src + f.dst) % 4

    def test_per_host_load_calibrated(self):
        n_hosts = 8
        flows = _gen().all_to_all(
            hosts=range(n_hosts), cdfs=[WEB_SEARCH], load=0.5,
            edge_rate_bps=GBPS, n_flows=3000,
        )
        span = max(f.start_ns for f in flows)
        total = sum(f.size_bytes for f in flows) * 8 * SEC / span
        assert total == pytest.approx(0.5 * GBPS * n_hosts, rel=0.15)

    def test_needs_two_hosts(self):
        with pytest.raises(ValueError):
            _gen().all_to_all([0], [CACHE], 0.5, GBPS, 10)

    def test_flow_ids_unique_and_offset(self):
        flows = _gen().all_to_all(
            hosts=range(4), cdfs=[CACHE], load=0.5,
            edge_rate_bps=GBPS, n_flows=50, first_flow_id=1000,
        )
        ids = [f.id for f in flows]
        assert ids == list(range(1000, 1050))
