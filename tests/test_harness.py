"""Harness: config validation, scheme registries, end-to-end runs."""

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.report import format_fct_rows, format_table
from repro.harness.runner import run_experiment
from repro.harness.schemes import SCHEDULERS, SCHEMES, TRANSPORTS
from repro.units import GBPS, KB, USEC


class TestConfig:
    def test_default_thresholds_follow_equations(self):
        cfg = ExperimentConfig(link_rate_bps=GBPS, base_rtt_ns=250 * USEC)
        assert cfg.effective_red_threshold_bytes == 31_250
        assert cfg.effective_tcn_threshold_ns == 250 * USEC

    def test_pinned_thresholds_win(self):
        cfg = ExperimentConfig(
            red_threshold_bytes=30 * KB, tcn_threshold_ns=100 * USEC
        )
        assert cfg.effective_red_threshold_bytes == 30 * KB
        assert cfg.effective_tcn_threshold_ns == 100 * USEC

    def test_codel_defaults_scale_with_rtt(self):
        cfg = ExperimentConfig(base_rtt_ns=250 * USEC)
        assert cfg.effective_codel_target_ns == 50 * USEC
        assert cfg.effective_codel_interval_ns == 1000 * USEC

    def test_lambda_scales_both(self):
        cfg = ExperimentConfig(
            link_rate_bps=GBPS, base_rtt_ns=200 * USEC, lam=0.5
        )
        assert cfg.effective_red_threshold_bytes == 12_500
        assert cfg.effective_tcn_threshold_ns == 100 * USEC

    def test_validation_load(self):
        with pytest.raises(ValueError):
            ExperimentConfig(load=0.0).validate()

    def test_validation_topology(self):
        with pytest.raises(ValueError):
            ExperimentConfig(topology="ring").validate()

    def test_validation_sp_needs_high_queue(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scheduler="sp_dwrr", n_queues=2, n_high=2).validate()

    def test_validation_pias_needs_sp(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scheduler="dwrr", pias=True).validate()


class TestRegistries:
    def test_all_paper_schemes_present(self):
        for name in ("tcn", "codel", "mqecn", "red_std", "dequeue_red",
                     "perport_red", "ideal"):
            assert name in SCHEMES

    def test_all_paper_schedulers_present(self):
        for name in ("dwrr", "wfq", "sp_dwrr", "sp_wfq", "sp", "wrr", "pifo"):
            assert name in SCHEDULERS

    def test_transports(self):
        assert set(TRANSPORTS) == {"dctcp", "ecnstar", "reno"}

    def test_factories_produce_fresh_instances(self):
        cfg = ExperimentConfig()
        a, b = SCHEMES["tcn"](cfg), SCHEMES["tcn"](cfg)
        assert a is not b
        s1, s2 = SCHEDULERS["dwrr"](cfg), SCHEDULERS["dwrr"](cfg)
        assert s1.queues[0] is not s2.queues[0]


class TestRunExperiment:
    def test_small_star_run(self):
        cfg = ExperimentConfig(
            scheme="tcn", scheduler="dwrr", workload="websearch",
            load=0.5, n_flows=20, n_queues=4, seed=1,
        )
        res = run_experiment(cfg)
        assert res.all_completed
        assert res.summary.n_flows == 20
        assert res.summary.avg_all_ns > 0
        assert res.marks >= 0 and res.drops >= 0

    def test_deterministic(self):
        cfg = dict(scheme="tcn", scheduler="dwrr", workload="cache",
                   load=0.5, n_flows=15, seed=3)
        a = run_experiment(ExperimentConfig(**cfg))
        b = run_experiment(ExperimentConfig(**cfg))
        assert a.summary.avg_all_ns == b.summary.avg_all_ns
        assert a.marks == b.marks and a.drops == b.drops

    def test_seed_changes_traffic(self):
        base = dict(scheme="tcn", scheduler="dwrr", workload="cache",
                    load=0.5, n_flows=15)
        a = run_experiment(ExperimentConfig(seed=1, **base))
        b = run_experiment(ExperimentConfig(seed=2, **base))
        assert a.summary.avg_all_ns != b.summary.avg_all_ns

    def test_pias_run(self):
        cfg = ExperimentConfig(
            scheme="tcn", scheduler="sp_wfq", n_queues=5, n_high=1,
            pias=True, workload="cache", load=0.5, n_flows=20, seed=2,
        )
        res = run_experiment(cfg)
        assert res.all_completed

    def test_leafspine_mixed_run(self):
        cfg = ExperimentConfig(
            scheme="tcn", scheduler="sp_dwrr", topology="leafspine",
            n_leaf=2, n_spine=2, hosts_per_leaf=2, link_rate_bps=10 * GBPS,
            buffer_bytes=300 * KB, base_rtt_ns=85_200, n_queues=4,
            pias=True, transport="dctcp", workload="mixed", load=0.4,
            n_flows=30, min_rto_ns=5_000_000, seed=4,
        )
        res = run_experiment(cfg)
        assert res.all_completed

    def test_identical_workload_across_schemes(self):
        """Same seed, different scheme: the flow list must be identical
        (size, src, dst, start), or scheme comparisons are invalid."""
        base = dict(scheduler="dwrr", workload="websearch", load=0.6,
                    n_flows=25, seed=9)
        a = run_experiment(ExperimentConfig(scheme="tcn", **base))
        b = run_experiment(ExperimentConfig(scheme="red_std", **base))
        key = lambda fl: [(f.id, f.src, f.dst, f.size_bytes) for f in fl]
        assert key(a.flows) == key(b.flows)


class TestDrainedHeapReturnsPromptly:
    def test_stalled_flow_does_not_busy_spin(self, monkeypatch):
        """Regression: when the event heap drains before every flow has
        completed (a stalled flow has no timers pending, so nothing can
        ever finish it), run_experiment must return promptly with
        ``completed < total`` instead of spinning in 50 ms chunks all the
        way to a distant deadline."""
        import repro.harness.runner as runner_mod
        from repro.units import SEC

        # wire every flow but the last: that flow never starts, so the
        # heap drains once the other nine finish
        real_wire = runner_mod._wire_endpoints

        def wire_all_but_last(sim, cfg, topo, flows, collector, tagger):
            return real_wire(sim, cfg, topo, flows[:-1], collector, tagger)

        monkeypatch.setattr(runner_mod, "_wire_endpoints", wire_all_but_last)

        # a busy-spinning loop calls sim.run once per 50 ms chunk; with a
        # one-hour deadline that is 72,000 calls — fail fast way earlier
        calls = {"n": 0}

        class CountingSim(runner_mod.Simulator):
            def run(self, *args, **kwargs):
                calls["n"] += 1
                assert calls["n"] < 2_000, "runner busy-spins on drained heap"
                return super().run(*args, **kwargs)

        monkeypatch.setattr(runner_mod, "Simulator", CountingSim)

        cfg = ExperimentConfig(
            scheme="tcn", scheduler="dwrr", workload="cache",
            load=0.5, n_flows=10, seed=1, max_sim_ns=3600 * SEC,
        )
        res = runner_mod.run_experiment(cfg)
        assert res.completed == res.total - 1
        assert not res.all_completed


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_fct_rows_normalizes_to_tcn(self):
        base = dict(scheduler="dwrr", workload="cache", load=0.5,
                    n_flows=15, seed=3)
        results = {
            "tcn": run_experiment(ExperimentConfig(scheme="tcn", **base)),
            "red_std": run_experiment(ExperimentConfig(scheme="red_std", **base)),
        }
        out = format_fct_rows(results)
        assert "tcn" in out and "red_std" in out
        assert "1.00" in out  # tcn normalized to itself
