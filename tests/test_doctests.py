"""Run the doctests embedded in the library's docstrings."""

import doctest

import pytest

import repro.core.thresholds
import repro.sim.engine
import repro.sim.rng
import repro.units
import repro.workloads.cdf
import repro.workloads.distributions

MODULES = [
    repro.units,
    repro.core.thresholds,
    repro.sim.engine,
    repro.sim.rng,
    repro.workloads.cdf,
    repro.workloads.distributions,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module)
    assert result.failed == 0
