"""WFQ (self-clocked) and WRR scheduler semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sched.base import make_queues
from repro.sched.wfq import WfqScheduler
from repro.sched.wrr import WrrScheduler
from tests.helpers import drain_in_order, fill


def _served_bytes(sched, n_pkts):
    served = {q.index: 0 for q in sched.queues}
    for _ in range(n_pkts):
        result = sched.dequeue(0)
        if result is None:
            break
        pkt, queue = result
        served[queue.index] += pkt.wire_size
    return served


class TestWfq:
    def test_equal_weights_alternate(self):
        s = WfqScheduler(make_queues(2))
        fill(s, 0, 4)
        fill(s, 1, 4)
        order = [p.dscp for p in drain_in_order(s)]
        # strict alternation for same-size packets with equal weights
        assert order in ([0, 1, 0, 1, 0, 1, 0, 1], [1, 0, 1, 0, 1, 0, 1, 0])

    def test_weights_shape_shares(self):
        queues = make_queues(2, weights=[3.0, 1.0])
        s = WfqScheduler(queues)
        fill(s, 0, 120)
        fill(s, 1, 120)
        served = _served_bytes(s, 120)
        ratio = served[0] / served[1]
        assert 2.5 <= ratio <= 3.5

    def test_work_conserving(self):
        s = WfqScheduler(make_queues(3))
        fill(s, 1, 7)
        assert len(drain_in_order(s)) == 7

    def test_vtime_resets_on_idle(self):
        """After full drain, a fresh packet must not inherit stale tags."""
        s = WfqScheduler(make_queues(2))
        fill(s, 0, 50)
        drain_in_order(s)
        assert s._vtime == 0.0
        fill(s, 1, 1)
        pkt, queue = s.dequeue(0)
        assert queue.index == 1

    def test_late_joiner_not_starved_and_not_overserved(self):
        """A queue joining late competes from the current virtual time, not
        from zero (else it would monopolize the link)."""
        s = WfqScheduler(make_queues(2))
        fill(s, 0, 100)
        for _ in range(50):
            s.dequeue(0)
        fill(s, 1, 100)
        served = _served_bytes(s, 40)
        assert served[0] > 0 and served[1] > 0
        assert abs(served[0] - served[1]) <= 2 * 1500

    def test_rejects_nonpositive_weight(self):
        queues = make_queues(2, weights=[1.0, 0.0])
        with pytest.raises(ValueError):
            WfqScheduler(queues)

    def test_no_rounds_exposed(self):
        assert WfqScheduler(make_queues(2)).supports_rounds is False


class TestWrr:
    def test_round_robin_order(self):
        s = WrrScheduler(make_queues(2))
        fill(s, 0, 3)
        fill(s, 1, 3)
        order = [p.dscp for p in drain_in_order(s)]
        assert order == [0, 1, 0, 1, 0, 1]

    def test_weight_means_packets_per_turn(self):
        queues = make_queues(2, weights=[2.0, 1.0])
        s = WrrScheduler(queues)
        fill(s, 0, 4)
        fill(s, 1, 4)
        order = [p.dscp for p in drain_in_order(s)]
        assert order[:3] == [0, 0, 1]

    def test_supports_rounds(self):
        assert WrrScheduler(make_queues(2)).supports_rounds is True

    def test_round_observer_fires(self):
        s = WrrScheduler(make_queues(2))
        seen = []
        s.round_observer = lambda q, rt, now: seen.append(rt)
        fill(s, 0, 5)
        fill(s, 1, 5)
        now = 0
        for _ in range(10):
            s.dequeue(now)
            now += 10_000
        assert seen and all(rt > 0 for rt in seen)


@settings(max_examples=30, deadline=None)
@given(
    weights=st.lists(
        st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
        min_size=2,
        max_size=5,
    ),
)
def test_property_wfq_shares_track_weights(weights):
    """Backlogged WFQ queues receive service proportional to weight."""
    n = len(weights)
    s = WfqScheduler(make_queues(n, weights=weights))
    for q in range(n):
        fill(s, q, 200)
    served = _served_bytes(s, 150)
    total = sum(served.values())
    wsum = sum(weights)
    for q in range(n):
        expected = total * weights[q] / wsum
        assert abs(served[q] - expected) <= 2 * 1500 + 0.1 * total
