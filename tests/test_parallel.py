"""The partitioned engine: unit protocol tests and digest-checked
serial equivalence.

The acceptance contract of repro.sim.parallel is that a leafspine
experiment produces **bit-identical results** on the serial engine and
on the partitioned engine at any worker count — pinned here three ways:

* field-by-field result comparison (FCTs, counters, events, sim_ns,
  metrics, trace);
* SHA-256 golden digests of the FCT vector and the canonicalized trace,
  so a regression in *either* engine (not just a divergence between
  them) fails loudly;
* worker-count invariance (1 vs 2 vs 4) — which holds by construction,
  since the partitioning is per-leaf regardless of worker count.

Known, accepted divergence: events from *different* partitions carrying
the same fire time **and** the same scheduling time may interleave
differently than the serial engine's global counter would have ordered
them (the composite key cannot recover global scheduling order inside
one nanosecond).  The trace digest is therefore computed over *sorted*
lines; on configs where such ties occur the per-line content can still
differ (observed: ACK pairs meeting at a spine in the same nanosecond).
The reference config below has no such ties, so even the trace digest
matches the serial run exactly.

Golden regeneration: run the module with ``--regen`` semantics by
printing the digests from ``_digests`` below after an intentional
behaviour change, and update the constants.
"""

import hashlib
import json
import multiprocessing

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.net.boundary import BoundaryMux, import_packet
from repro.net.packet import Packet, PacketKind
from repro.obs import Tracer
from repro.sim.parallel import (
    INF,
    ChunkSync,
    PartitionSimulator,
    min_handoff_latency_ns,
)
from repro.sim.parallel.cluster import _digest_reports, _merge_metrics
from repro.sim.parallel.partition import (
    ARRIVAL_BIT,
    HANDOFF_LIMIT,
    MAX_PARTITIONS,
    TIME_SHIFT,
)

HAS_MP = bool(multiprocessing.get_all_start_methods())

# -- protocol unit tests ---------------------------------------------------


class TestLookahead:
    def test_matches_port_serialization_arithmetic(self):
        # 40 B at 1 Gbps = ceil(320 bits / 1 bit-per-ns) = 320 ns, + 650
        assert min_handoff_latency_ns(10**9, 650) == 970

    def test_ceil_division(self):
        # 40 B at 3 Gbps: 320/3 = 106.67 -> 107
        assert min_handoff_latency_ns(3 * 10**9, 0) == 107

    def test_validation(self):
        with pytest.raises(ValueError):
            min_handoff_latency_ns(0, 650)
        with pytest.raises(ValueError):
            min_handoff_latency_ns(10**9, -1)


class TestChunkSync:
    def test_horizon_is_lookahead_bounded(self):
        sync = ChunkSync(10**9, 970, 5, 50_000_000)
        assert sync.horizon(1000) == 1000 + 970 - 1

    def test_horizon_clips_to_chunk_boundary(self):
        sync = ChunkSync(10**9, 970, 5, 50_000_000)
        assert sync.horizon(50_000_000 - 10) == 50_000_000

    def test_idle_fabric_fast_forwards_to_boundary(self):
        sync = ChunkSync(10**9, 970, 5, 50_000_000)
        assert sync.horizon(INF) == 50_000_000

    def test_boundary_clips_to_deadline(self):
        sync = ChunkSync(30_000_000, 970, 5, 50_000_000)
        assert sync.boundary == 30_000_000

    def test_stop_on_completion(self):
        sync = ChunkSync(10**9, 970, 5, 50_000_000)
        assert sync.on_boundary(m_hat=123, completed=5)
        assert sync.stop_reason == "completed"
        assert sync.sim_ns == 50_000_000

    def test_stop_on_deadline(self):
        sync = ChunkSync(70_000_000, 970, 5, 50_000_000)
        assert not sync.on_boundary(m_hat=123, completed=0)
        assert sync.boundary == 70_000_000  # clipped to the deadline
        assert sync.on_boundary(m_hat=123, completed=0)
        assert sync.stop_reason == "deadline"
        assert sync.sim_ns == 70_000_000

    def test_stop_on_idle(self):
        sync = ChunkSync(10**9, 970, 5, 50_000_000)
        assert sync.on_boundary(m_hat=INF, completed=0)
        assert sync.stop_reason == "idle"
        assert sync.sim_ns == 50_000_000

    def test_advances_one_chunk_at_a_time(self):
        sync = ChunkSync(10**9, 970, 5, 50_000_000)
        for k in range(2, 5):
            assert not sync.on_boundary(m_hat=123, completed=0)
            assert sync.boundary == k * 50_000_000

    def test_validation(self):
        for bad in ((0, 970, 1, 1), (10, 0, 1, 1), (10, 970, 1, 0)):
            deadline, lookahead, flows, chunk = bad
            with pytest.raises(ValueError):
                ChunkSync(deadline, lookahead, flows, chunk)


class _FakeSink:
    """Minimal BoundarySink: records exports, returns packet fields."""

    def __init__(self, spine_id):
        self.spine_id = spine_id
        self.exported = []

    def export(self, pkt):
        self.exported.append(pkt)
        return ("pkt", pkt.flow_id, pkt.dst)


class TestPartitionSimulator:
    def test_pid_range_is_validated(self):
        with pytest.raises(ValueError):
            PartitionSimulator(-1)
        with pytest.raises(ValueError):
            PartitionSimulator(MAX_PARTITIONS)

    def test_same_timestamp_fifo_order(self):
        sim = PartitionSimulator(0)
        log = []
        for i in range(5):
            sim.schedule(100, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_negative_delay_and_past_schedule_raise(self):
        sim = PartitionSimulator(0)
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5, lambda: None)

    def test_non_boundary_tx_schedules_pair(self):
        sim = PartitionSimulator(0)
        log = []
        pkt = object()
        sim.schedule_tx(10, lambda: log.append("done"), 25,
                        lambda p: log.append(("rx", p)), pkt)
        assert sim.run() == 2
        assert log == ["done", ("rx", pkt)]
        assert sim.outbox == []

    def test_boundary_tx_captures_handoff(self):
        sim = PartitionSimulator(3)
        sink = _FakeSink(spine_id=1)

        def rx_fn(p):
            raise AssertionError("boundary delivery must not fire locally")

        sim.register_boundary(rx_fn, sink)
        log = []
        pkt = Packet(7, 0, 5, PacketKind.DATA, seq=2, payload=1000)
        sim.schedule_tx(10, lambda: log.append("done"), 25, rx_fn, pkt)
        # the serializer-done tick is the only local event
        assert sim.run() == 1
        assert log == ["done"]
        assert sink.exported == [pkt]
        [(rx_abs, aseq, spine_id, fields)] = sim.drain_outbox()
        assert rx_abs == 25
        assert spine_id == 1
        assert fields == ("pkt", 7, 5)
        # composite arrival key: send-time bits, arrival flag, source pid
        assert aseq >> TIME_SHIFT == 0
        assert aseq & ARRIVAL_BIT
        assert (aseq >> 14) & (MAX_PARTITIONS - 1) == 3
        assert sim.outbox == []  # drained

    def test_arrival_sorts_after_same_sched_time_locals(self):
        # locals keep bit 23 clear, arrivals set it: for the same
        # scheduling nanosecond, local events order first.  pid 1: the
        # fabricated arrival's src field is 0, and a sanitized run
        # (REPRO_SANITIZE=1) rejects an arrival naming its own partition.
        sim = PartitionSimulator(1)
        log = []
        sim.insert_arrival(
            100, (0 << TIME_SHIFT) | ARRIVAL_BIT,
            lambda p: log.append("arrival"), None,
        )
        sim.schedule(100, lambda: log.append("local"))
        sim.run()
        assert log == ["local", "arrival"]

    def test_insert_arrival_in_the_past_raises(self):
        sim = PartitionSimulator(0)
        sim.schedule(100, lambda: None)
        sim.run()
        assert sim.now == 100
        with pytest.raises(RuntimeError, match="lookahead"):
            sim.insert_arrival(100, ARRIVAL_BIT, lambda p: None, None)

    def test_handoff_counter_exhaustion_raises(self):
        sim = PartitionSimulator(0)
        sink = _FakeSink(spine_id=0)
        rx = lambda p: None  # noqa: E731
        sim.register_boundary(rx, sink)
        sim._handoff_cnt = HANDOFF_LIMIT  # simulate an exhausted nanosecond
        sim._seq_time = sim.now
        with pytest.raises(RuntimeError, match="handoff"):
            sim.schedule_tx(
                1, lambda: None, 2, rx, Packet(1, 0, 1, PacketKind.DATA)
            )


class TestBoundaryMux:
    def test_receive_raises(self):
        mux = BoundaryMux(2)
        with pytest.raises(RuntimeError, match="bypassed"):
            mux.receive(Packet(1, 0, 1, PacketKind.DATA))

    def test_receive_is_identity_stable(self):
        mux = BoundaryMux(0)
        assert mux.receive is mux.receive  # dict-keyable across lookups

    def test_export_import_roundtrip(self):
        pkt = Packet(
            11, 3, 9, PacketKind.ACK, seq=42, payload=0,
            ect=True, dscp=5, ts=123456,
        )
        pkt.ce = True
        pkt.ece = True
        pkt.ts_echo = 999
        pkt.is_retx = True
        wire_size = pkt.wire_size
        rebuilt = import_packet(BoundaryMux(0).export(pkt))
        assert rebuilt.flow_id == 11
        assert rebuilt.src == 3 and rebuilt.dst == 9
        assert rebuilt.kind is PacketKind.ACK
        assert rebuilt.seq == 42
        assert rebuilt.ect and rebuilt.dscp == 5 and rebuilt.ts == 123456
        assert rebuilt.ce and rebuilt.ece
        assert rebuilt.ts_echo == 999 and rebuilt.is_retx
        assert rebuilt.wire_size == wire_size


class TestCoordinatorHelpers:
    def test_digest_reports_min_over_queues_and_outboxes(self):
        hpl = 2
        handoff = (500, 7, 0, ("pkt", 1, 5))  # dst host 5 -> partition 2
        reports = {
            0: (1000, [handoff], 1, 10),
            1: (INF, [], 2, 20),
        }
        m_hat, completed, route = _digest_reports(reports, hpl)
        assert m_hat == 500  # the undelivered handoff, not the queue min
        assert completed == 3
        assert route == {2: [handoff]}

    def test_digest_reports_all_idle(self):
        m_hat, completed, route = _digest_reports(
            {0: (INF, [], 0, 0), 1: (INF, [], 0, 0)}, 2
        )
        assert m_hat == INF and completed == 0 and route == {}

    def test_merge_metrics_sums_counters_and_maxes_gauges(self):
        merged = _merge_metrics([
            {"p.rx_pkts": 5, "q.max_bytes_seen": 100},
            {"p.rx_pkts": 7, "q.max_bytes_seen": 300},
            {"p.rx_pkts": 0, "q.max_bytes_seen": 0},
        ])
        assert merged == {"p.rx_pkts": 12, "q.max_bytes_seen": 300}

    def test_merge_metrics_histograms(self):
        a = {"h": {"type": "histogram", "count": 2, "sum": 30,
                   "min": 10, "max": 20, "buckets": {"3": 2}}}
        b = {"h": {"type": "histogram", "count": 1, "sum": 5,
                   "min": 5, "max": 5, "buckets": {"2": 1}}}
        c = {"h": {"type": "histogram", "count": 0, "sum": 0,
                   "min": None, "max": None, "buckets": {}}}
        merged = _merge_metrics([a, b, c])
        assert merged["h"] == {
            "type": "histogram", "count": 3, "sum": 35,
            "min": 5, "max": 20, "buckets": {"3": 2, "2": 1},
        }
        # inputs were not mutated
        assert a["h"]["count"] == 2 and b["h"]["buckets"] == {"2": 1}


# -- serial equivalence (the acceptance) -----------------------------------

#: the reference config: 4 leaves (= 4 partitions) x 2 spines x 2 hosts
#: per leaf, every leaf pair exchanging websearch traffic
_REFERENCE = dict(
    topology="leafspine", n_leaf=4, n_spine=2, hosts_per_leaf=2,
    workload="websearch", transport="dctcp", scheme="tcn",
    scheduler="dwrr", load=0.6, n_flows=40, seed=5,
)

#: golden digests of the serial run on the reference config — update
#: only with an intentional behaviour change, and say why in the commit
_GOLDEN_FCT = (
    "07943316c186358824a50c0f351689aa542b6114d64f3307c95114cdc34bfbf8"
)
_GOLDEN_TRACE = (
    "9f411b3fe3c779781aadf252b81151227771d41fbf34765448c042af84713d40"
)


def _run(workers):
    tracer = Tracer(capacity=None)
    result = run_experiment(
        ExperimentConfig(workers=workers, **_REFERENCE), tracer=tracer
    )
    return result, tracer


def _digests(result, tracer):
    fct = hashlib.sha256(
        json.dumps(
            [(f.id, f.fct_ns, f.completed) for f in result.flows]
        ).encode()
    ).hexdigest()
    lines = sorted(json.dumps(list(e)) for e in tracer.events)
    trace = hashlib.sha256("\n".join(lines).encode()).hexdigest()
    return fct, trace


@pytest.fixture(scope="module")
def serial():
    return _run(0)


@pytest.fixture(scope="module")
def in_process():
    return _run(1)


def _assert_equivalent(serial, other):
    a, tr_a = serial
    b, tr_b = other
    assert [(f.id, f.fct_ns, f.completed) for f in a.flows] == [
        (f.id, f.fct_ns, f.completed) for f in b.flows
    ]
    assert (a.completed, a.total) == (b.completed, b.total)
    assert a.events == b.events
    assert a.sim_ns == b.sim_ns
    assert (a.drops, a.marks) == (b.drops, b.marks)
    assert (a.timeouts, a.timeouts_small) == (b.timeouts, b.timeouts_small)
    assert a.summary.avg_all_ns == b.summary.avg_all_ns
    assert a.summary.p99_small_ns == b.summary.p99_small_ns
    assert a.metrics == b.metrics
    assert _digests(*serial) == _digests(*other)


class TestSerialEquivalence:
    def test_goldens_pin_the_serial_run(self, serial):
        fct, trace = _digests(*serial)
        assert fct == _GOLDEN_FCT
        assert trace == _GOLDEN_TRACE

    def test_workers_1_in_process(self, serial, in_process):
        _assert_equivalent(serial, in_process)
        assert in_process[0].profile["start_method"] == "in-process"
        assert in_process[0].profile["partitions"] == 4

    @pytest.mark.skipif(not HAS_MP, reason="no multiprocessing start method")
    def test_workers_2_multiprocessing(self, serial):
        par = _run(2)
        _assert_equivalent(serial, par)
        assert par[0].profile["workers"] == 2
        assert par[0].profile["start_method"] != "in-process"

    @pytest.mark.skipif(not HAS_MP, reason="no multiprocessing start method")
    def test_workers_4_multiprocessing(self, serial):
        par = _run(4)
        _assert_equivalent(serial, par)
        assert par[0].profile["workers"] == 4

    def test_profile_accounting(self, serial, in_process):
        profile = in_process[0].profile
        per_part = profile["per_partition"]
        assert len(per_part) == 4
        assert sum(p["events"] for p in per_part) == profile["events"]
        assert profile["events"] == serial[0].events
        assert profile["rounds"] > 0
        assert profile["cpu_count"] >= 1

    def test_workers_clamped_to_partitions(self):
        # more workers than leaves just idles the surplus — results and
        # the recorded worker count stay at the partition count
        result, _ = _run(99)
        assert result.profile["workers"] <= 4
        assert result.profile["partitions"] == 4


class TestValidation:
    def test_workers_require_leafspine(self):
        cfg = ExperimentConfig(
            scheme="tcn", scheduler="dwrr", workload="websearch",
            n_flows=10, workers=2,
        )
        with pytest.raises(ValueError, match="workers"):
            cfg.validate()

    def test_negative_workers_rejected(self):
        cfg = ExperimentConfig(workers=-1, **_REFERENCE)
        with pytest.raises(ValueError, match="workers"):
            cfg.validate()
