"""PacketQueue byte accounting and statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.net.queue import PacketQueue
from tests.helpers import data_pkt


class TestBasics:
    def test_starts_empty(self):
        q = PacketQueue(0)
        assert len(q) == 0 and q.bytes == 0 and not q

    def test_push_accounts_wire_bytes(self):
        q = PacketQueue(0)
        q.push(data_pkt(payload=1460))
        assert q.bytes == 1500
        assert len(q) == 1

    def test_fifo_order(self):
        q = PacketQueue(0)
        for i in range(5):
            q.push(data_pkt(seq=i))
        assert [q.pop().seq for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            PacketQueue(0).pop()

    def test_head_peeks_without_removing(self):
        q = PacketQueue(0)
        q.push(data_pkt(seq=7))
        assert q.head().seq == 7
        assert len(q) == 1

    def test_head_empty_is_none(self):
        assert PacketQueue(0).head() is None


class TestStats:
    def test_counters(self):
        q = PacketQueue(0)
        for i in range(3):
            q.push(data_pkt(seq=i))
        q.pop()
        assert q.enqueued_pkts == 3
        assert q.dequeued_pkts == 1
        assert q.dequeued_bytes == 1500

    def test_max_bytes_seen_high_water(self):
        q = PacketQueue(0)
        for i in range(4):
            q.push(data_pkt(seq=i))
        for _ in range(4):
            q.pop()
        assert q.max_bytes_seen == 4 * 1500
        assert q.bytes == 0


@given(st.lists(st.integers(min_value=1, max_value=1460), min_size=1, max_size=100))
def test_property_bytes_always_consistent(payloads):
    """bytes == sum of wire sizes of buffered packets, at every step."""
    q = PacketQueue(0)
    for i, p in enumerate(payloads):
        q.push(data_pkt(seq=i, payload=p))
    expected = sum(p + 40 for p in payloads)
    assert q.bytes == expected
    while q:
        pkt = q.pop()
        expected -= pkt.wire_size
        assert q.bytes == expected
    assert q.bytes == 0
