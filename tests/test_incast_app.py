"""The partition-aggregate (incast) application."""

import pytest

from repro.apps.incast import IncastApp
from repro.core.tcn import Tcn
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator
from repro.topo.star import StarTopology
from repro.units import GBPS, KB, MSEC, SEC, USEC


def _setup(n_workers=8, buffer_kb=300, rate=10 * GBPS):
    sim = Simulator()
    topo = StarTopology(
        sim, n_workers + 1, rate,
        sched_factory=FifoScheduler,
        aqm_factory=lambda: Tcn(100 * USEC),
        buffer_bytes=buffer_kb * KB,
        link_delay_ns=25_000,
    )
    return sim, topo


class TestIncastApp:
    def test_queries_complete(self):
        sim, topo = _setup()
        app = IncastApp(
            sim, topo.hosts[0], topo.hosts[1:], response_bytes=20 * KB,
            interval_ns=10 * MSEC, n_queries=5,
        )
        sim.schedule(0, app.start)
        sim.run(until=1 * SEC)
        assert app.completed == 5
        assert all(q > 0 for q in app.qcts_ns())

    def test_qct_is_tail_bound(self):
        """QCT equals the slowest response, not the fastest."""
        sim, topo = _setup()
        app = IncastApp(
            sim, topo.hosts[0], topo.hosts[1:], response_bytes=50 * KB,
            interval_ns=50 * MSEC, n_queries=1,
        )
        sim.schedule(0, app.start)
        sim.run(until=1 * SEC)
        query = app.queries[0]
        assert query.qct_ns >= max(f.fct_ns for f in query.flows)

    def test_interval_spacing(self):
        sim, topo = _setup()
        app = IncastApp(
            sim, topo.hosts[0], topo.hosts[1:], response_bytes=10 * KB,
            interval_ns=7 * MSEC, n_queries=3,
        )
        sim.schedule(0, app.start)
        sim.run(until=1 * SEC)
        starts = [q.start_ns for q in app.queries]
        assert starts == [0, 7 * MSEC, 14 * MSEC]

    def test_flow_count_and_ids_unique(self):
        sim, topo = _setup(n_workers=4)
        app = IncastApp(
            sim, topo.hosts[0], topo.hosts[1:], response_bytes=10 * KB,
            interval_ns=5 * MSEC, n_queries=3,
        )
        sim.schedule(0, app.start)
        sim.run(until=1 * SEC)
        ids = [f.id for q in app.queries for f in q.flows]
        assert len(ids) == 12 and len(set(ids)) == 12

    def test_callback_fires_per_query(self):
        sim, topo = _setup()
        done = []
        app = IncastApp(
            sim, topo.hosts[0], topo.hosts[1:], response_bytes=10 * KB,
            interval_ns=5 * MSEC, n_queries=4, on_query_done=done.append,
        )
        sim.schedule(0, app.start)
        sim.run(until=1 * SEC)
        assert len(done) == 4

    def test_heavy_incast_survives_tight_buffer(self):
        """32-way incast into a 100 KB buffer: timeouts happen, but every
        query eventually completes (reliability under pressure)."""
        sim, topo = _setup(n_workers=32, buffer_kb=100)
        app = IncastApp(
            sim, topo.hosts[0], topo.hosts[1:], response_bytes=64 * KB,
            interval_ns=50 * MSEC, n_queries=3, min_rto_ns=10 * MSEC,
        )
        sim.schedule(0, app.start)
        sim.run(until=5 * SEC)
        assert app.completed == 3

    def test_validation(self):
        sim, topo = _setup()
        with pytest.raises(ValueError):
            IncastApp(sim, topo.hosts[0], [], response_bytes=10 * KB,
                      interval_ns=1, n_queries=1)
        with pytest.raises(ValueError):
            IncastApp(sim, topo.hosts[0], topo.hosts[1:], response_bytes=0,
                      interval_ns=1, n_queries=1)
