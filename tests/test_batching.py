"""Batched hot path is bit-identical to the legacy per-event loop.

The batched dispatcher (same-timestamp run draining, inline transmit
trains, bulk sends) is a pure performance knob: ``batch=True`` and
``batch=False`` must produce the same event sequence, the same clock,
the same flow results and the same trace bytes on every backend.  Four
layers of evidence:

1. backend unit tests — ``drain_run``/``peek_floor`` honour their
   contracts (run boundaries, limits, tombstone inclusion, floor
   conservatism) on all three backends;
2. engine fuzz — randomized re-entrant workloads with same-timestamp
   clusters, mid-run cancellation and run()/until/max_events boundaries
   landing *inside* runs execute identically batched and unbatched;
3. end-to-end — every scheduling discipline and every backend yields
   identical flow results with the batch knob on and off;
4. goldens — the unbatched path reproduces the SHA-256 FCT pins of the
   batched path, serial and partitioned (workers=2).
"""

import hashlib
import json
import random

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.harness.schemes import SCHEDULERS
from repro.obs import Tracer
from repro.sim.engine import Simulator
from repro.sim.equeue import BACKENDS, make_equeue
from repro.sim.equeue.base import NEVER

from tests.test_parallel import _GOLDEN_FCT, _REFERENCE, _digests

ALL = sorted(BACKENDS)


# -- layer 1: drain_run / peek_floor contracts -----------------------------


def _mk(backend):
    eq = make_equeue(backend)
    cancelled = set()
    eq.attach(cancelled)
    return eq, cancelled


@pytest.mark.parametrize("backend", ALL)
class TestDrainRun:
    def test_pops_whole_run_in_seq_order(self, backend):
        eq, _ = _mk(backend)
        entries = [(10, 1, None), (10, 2, None), (10, 3, None), (20, 4, None)]
        for entry in entries:
            eq.push(entry)
        run = eq.drain_run(NEVER, 64)
        assert run == entries[:3]
        assert len(eq) == 1
        assert eq.drain_run(NEVER, 64) == [entries[3]]
        assert eq.drain_run(NEVER, 64) is None

    def test_bound_leaves_later_entry_queued(self, backend):
        eq, _ = _mk(backend)
        eq.push((50, 1, None))
        assert eq.drain_run(40, 64) is None
        assert len(eq) == 1
        assert eq.drain_run(50, 64) == [(50, 1, None)]

    def test_limit_splits_run_without_reordering(self, backend):
        eq, _ = _mk(backend)
        entries = [(7, s, None) for s in range(1, 6)]
        for entry in entries:
            eq.push(entry)
        assert eq.drain_run(NEVER, 2) == entries[:2]
        # the remainder keeps the least timestamp: the next call is
        # indistinguishable from the first having had a larger budget
        assert eq.drain_run(NEVER, 64) == entries[2:]

    def test_limit_below_one_still_makes_progress(self, backend):
        eq, _ = _mk(backend)
        eq.push((3, 1, None))
        assert eq.drain_run(NEVER, 0) == [(3, 1, None)]

    def test_tombstones_are_included_unless_cancelled_physically(
        self, backend
    ):
        eq, cancelled = _mk(backend)
        entries = [(10, 1, None), (10, 2, None), (10, 3, None)]
        for entry in entries:
            eq.push(entry)
        victim = entries[1]
        physical = eq.cancel(victim)
        if not physical:
            cancelled.add(victim[1])
        expected = [e for e in entries if physical is False or e != victim]
        assert eq.drain_run(NEVER, 64) == expected

    def test_peek_floor_is_a_conservative_lower_bound(self, backend):
        eq, cancelled = _mk(backend)
        assert eq.peek_floor() == NEVER
        eq.push((40, 1, None))
        eq.push((25, 2, None))
        assert eq.peek_floor() <= 25
        # a tombstoned head may keep the floor conservative, but it must
        # never exceed the true next live time
        if not eq.cancel((25, 2, None)):
            cancelled.add(2)
        assert eq.peek_floor() <= 40
        assert eq.pop() in {(25, 2, None), (40, 1, None)}


# -- layer 2: batched-vs-unbatched engine fuzz -----------------------------


def _fuzz_drive(backend, batch, seed):
    """Randomized re-entrant workload; returns (log, now, executed).

    Callbacks draw from the *same* seeded RNG, so the streams coincide
    exactly when the execution orders do — any divergence between the
    batched and unbatched dispatchers amplifies into a different log.
    Same-timestamp clusters make multi-event runs, random cancellation
    hits pending events mid-run, and zero-delay schedules extend the
    run being drained.
    """
    sim = Simulator(equeue=backend, batch=batch)
    rng = random.Random(seed)
    log = []
    handles = []
    counter = [0]

    def make(tag):
        def fn():
            log.append((sim.now, tag))
            roll = rng.random()
            if roll < 0.5:
                # cluster: several events at one future timestamp
                delay = rng.randrange(0, 40) * 10
                for _ in range(rng.randrange(1, 5)):
                    counter[0] += 1
                    handles.append(sim.schedule(delay, make(counter[0])))
            if roll < 0.3 and handles:
                sim.cancel(handles.pop(rng.randrange(len(handles))))
            if roll < 0.15:
                # zero delay: lands inside the run currently draining
                counter[0] += 1
                handles.append(sim.schedule(0, make(counter[0])))
        return fn

    for _ in range(12):
        counter[0] += 1
        handles.append(sim.schedule(rng.randrange(0, 200), make(counter[0])))

    # drive in segments whose until/max_events boundaries land inside
    # runs; the boundary rng is separate so both modes see identical cuts
    cuts = random.Random(seed + 9001)
    while sim.pending:
        if cuts.random() < 0.5:
            sim.run(until=sim.now + cuts.randrange(0, 300))
        else:
            sim.run(max_events=cuts.randrange(1, 7))
        log.append(("segment", sim.now, sim.events_executed))
        if len(log) > 20000:  # pragma: no cover - runaway guard
            break
    return log, sim.now, sim.events_executed


@pytest.mark.parametrize("backend", ALL)
@pytest.mark.parametrize("seed", [2, 11, 23])
def test_fuzz_batched_equals_unbatched(backend, seed):
    batched = _fuzz_drive(backend, True, seed)
    unbatched = _fuzz_drive(backend, False, seed)
    assert batched == unbatched
    assert batched[0], "fuzz produced no events"


@pytest.mark.parametrize("seed", [2, 11])
def test_fuzz_identical_across_backends(seed):
    reference = _fuzz_drive("heap", True, seed)
    for backend in ALL:
        assert _fuzz_drive(backend, True, seed) == reference


class TestBatchCounters:
    def _cluster_sim(self, batch):
        sim = Simulator(batch=batch)
        for t in (10, 10, 10, 20, 20, 30):
            sim.schedule(t, lambda: None)
        sim.run()
        return sim

    def test_batched_loop_accounts_runs(self):
        sim = self._cluster_sim(True)
        assert sim.runs_drained == 3
        assert sum(sim.run_hist) == sim.runs_drained
        # 3-event and 2-event runs land in bucket bit_length(n); the
        # lone 1-event run in bucket 1
        assert sim.run_hist[1] == 1 and sim.run_hist[2] == 2

    def test_unbatched_loop_keeps_counters_zero(self):
        sim = self._cluster_sim(False)
        assert sim.runs_drained == 0
        assert sum(sim.run_hist) == 0
        assert sim.trains == 0 and sim.train_pkts == 0


# -- layers 3 and 4: end-to-end equivalence and goldens --------------------


def _flow_key(result):
    return [(f.id, f.fct_ns, f.completed) for f in result.flows]


def _counters(result):
    return {
        name: getattr(result, name)
        for name in (
            "completed", "total", "timeouts", "drops", "marks",
            "sim_ns", "events",
        )
    }


@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
def test_every_discipline_is_batch_invariant(scheduler):
    base = dict(
        scheme="tcn", scheduler=scheduler, workload="cache",
        load=0.4, n_flows=8, seed=3,
    )
    on = run_experiment(ExperimentConfig(**base))
    off = run_experiment(ExperimentConfig(batch=False, **base))
    assert _flow_key(on) == _flow_key(off)
    assert _counters(on) == _counters(off)


@pytest.mark.parametrize("backend", ALL)
def test_every_backend_is_batch_invariant(backend):
    base = dict(
        scheme="mqecn", scheduler="sp_dwrr", workload="websearch",
        load=0.5, n_flows=10, seed=6, equeue=backend,
    )
    on = run_experiment(ExperimentConfig(**base))
    off = run_experiment(ExperimentConfig(batch=False, **base))
    assert _flow_key(on) == _flow_key(off)
    assert _counters(on) == _counters(off)


def test_traced_equals_untraced_on_batched_path():
    cfg = dict(
        scheme="tcn", scheduler="dwrr", workload="cache",
        load=0.5, n_flows=10, seed=4,
    )
    tracer = Tracer()
    traced = run_experiment(ExperimentConfig(**cfg), tracer=tracer)
    untraced = run_experiment(ExperimentConfig(**cfg))
    assert tracer.events, "tracer saw nothing"
    assert _flow_key(traced) == _flow_key(untraced)
    assert _counters(traced) == _counters(untraced)


def test_unbatched_partitioned_run_matches_batched_golden():
    """workers=2 with --no-batch reproduces the serial batched FCT pin."""
    tracer = Tracer(capacity=None)
    result = run_experiment(
        ExperimentConfig(workers=2, batch=False, **_REFERENCE),
        tracer=tracer,
    )
    fct, _ = _digests(result, tracer)
    assert fct == _GOLDEN_FCT
